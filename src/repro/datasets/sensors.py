"""Sensor simulators: stereo camera, lidar and radar renderers.

Each simulator renders the same :class:`~repro.datasets.scenes.Scene`
through its modality's physics, then applies the context's degradation
profile.  The renderers correspond to the RADIATE rig (Sec. 5): a ZED
stereo camera (left+right), a Velodyne HDL-32e lidar and a Navtech
CTS350-X radar.

Modality characteristics (and why they matter to EcoFusion):

* **Cameras** — highest native resolution and the only class-colour cue,
  but passive: darkness, fog airlight, rain streaks and snow speckle all
  erode them.  The left camera is additionally vignetted and sits a stereo
  baseline away from the canonical (right-camera) frame, so residual
  disparity misaligns its annotations slightly — reproducing the paper's
  CL < CR ordering in Table 1.
* **Lidar** — active, lighting-independent, mid resolution; loses returns
  to backscatter in rain/snow and range in fog.
* **Radar** — coarse (rendered at quarter resolution) and nearly blind to
  low-RCS objects (pedestrians, bicycles), but almost weather-invariant.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .contexts import ContextProfile
from .scenes import (
    CLASS_LIDAR_DENSITY,
    CLASS_RADAR_TEXTURE,
    CLASS_RCS,
    Scene,
    SceneObject,
)

__all__ = [
    "SENSORS",
    "SENSOR_CHANNELS",
    "CLASS_COLORS",
    "MAX_DISPARITY",
    "render_camera",
    "render_lidar",
    "render_radar",
    "render_all_sensors",
]

# Canonical sensor order (matches the paper's Table 1 row order).
SENSORS: tuple[str, ...] = ("camera_left", "camera_right", "radar", "lidar")

SENSOR_CHANNELS: dict[str, int] = {
    "camera_left": 3,
    "camera_right": 3,
    "radar": 1,
    "lidar": 2,
}

# Distinct base colours give the cameras a class-identity cue the other
# modalities lack (mirroring real appearance vs. geometry information).
CLASS_COLORS: dict[str, tuple[float, float, float]] = {
    "car": (0.75, 0.30, 0.30),
    "van": (0.30, 0.75, 0.35),
    "truck": (0.78, 0.70, 0.25),
    "bus": (0.85, 0.45, 0.15),
    "motorbike": (0.35, 0.35, 0.85),
    "bicycle": (0.20, 0.70, 0.75),
    "pedestrian": (0.85, 0.30, 0.75),
    "group_of_pedestrians": (0.60, 0.35, 0.60),
}

# Lidar intensity per class: reflectivity proxy (weaker class cue than
# colour, so lidar classification is harder than camera — as in the
# paper's single-sensor mAP ordering).
CLASS_LIDAR_INTENSITY: dict[str, float] = {
    "car": 0.80,
    "van": 0.72,
    "truck": 0.95,
    "bus": 0.90,
    "motorbike": 0.55,
    "bicycle": 0.45,
    "pedestrian": 0.40,
    "group_of_pedestrians": 0.50,
}

# Lidar height-profile per class (z-extent of the point cluster, mapped to
# the second channel).  Height is the strongest geometric class cue a real
# spinning lidar provides: buses/trucks tower over cars, pedestrians are
# tall and narrow, bikes are low.
CLASS_LIDAR_HEIGHT: dict[str, float] = {
    "car": 0.45,
    "van": 0.65,
    "truck": 0.85,
    "bus": 1.00,
    "motorbike": 0.30,
    "bicycle": 0.38,
    "pedestrian": 0.55,
    "group_of_pedestrians": 0.55,
}

# Stereo: near objects shift up to MAX_DISPARITY px between left and right.
MAX_DISPARITY = 3.0


def _object_rng(obj: SceneObject, salt: int = 0) -> np.random.Generator:
    """Per-object deterministic rng so both cameras see the same jitter."""
    return np.random.default_rng(obj.appearance_seed + salt)


def _slice_box(box: np.ndarray, size: int) -> tuple[slice, slice]:
    x1, y1, x2, y2 = box
    xi1 = int(np.clip(np.floor(x1), 0, size - 1))
    yi1 = int(np.clip(np.floor(y1), 0, size - 1))
    xi2 = int(np.clip(np.ceil(x2), xi1 + 1, size))
    yi2 = int(np.clip(np.ceil(y2), yi1 + 1, size))
    return slice(yi1, yi2), slice(xi1, xi2)


def disparity_of(obj: SceneObject) -> float:
    """Stereo disparity in pixels: near objects (depth 0) shift the most."""
    return MAX_DISPARITY * (1.0 - obj.depth)


# ----------------------------------------------------------------------
# Camera
# ----------------------------------------------------------------------
def _render_camera_background(
    profile: ContextProfile, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Sky/road gradient with lane markings and mild texture."""
    img = np.zeros((3, size, size), dtype=np.float32)
    horizon = int(0.35 * size)
    rows = np.linspace(0, 1, size, dtype=np.float32)[:, None]
    sky = profile.sky_level * (1.0 - 0.3 * rows)
    road = profile.road_level * (0.8 + 0.4 * rows)
    base = np.where(np.arange(size)[:, None] < horizon, sky, road)
    img[:] = base[None, :, :]
    # Lane markings: two light dashed stripes converging toward the horizon.
    for lane_x in (0.35, 0.65):
        for y in range(horizon + 2, size, 3):
            t = (y - horizon) / max(size - horizon, 1)
            x = int(size * (0.5 + (lane_x - 0.5) * t))
            if 0 <= x < size:
                img[:, y, max(x - 1, 0) : x + 1] += 0.25
    img += rng.normal(0.0, 0.01, size=img.shape).astype(np.float32)
    return img


def _draw_camera_object(img: np.ndarray, obj: SceneObject, shift_x: float) -> None:
    """Paint one object (body, window/head band, wheel band, border)."""
    size = img.shape[1]
    box = obj.box.copy()
    box[0] += shift_x
    box[2] += shift_x
    ys, xs = _slice_box(box, size)
    if ys.stop - ys.start < 2 or xs.stop - xs.start < 2:
        return
    rng = _object_rng(obj)
    color = np.array(CLASS_COLORS[obj.class_name], dtype=np.float32)
    color = color * float(rng.uniform(0.85, 1.15))
    img[:, ys, xs] = color[:, None, None]
    h = ys.stop - ys.start
    is_vehicle = obj.class_name in ("car", "van", "truck", "bus", "motorbike")
    if is_vehicle and h >= 4:
        # Window band (lighter) near the top, wheel band (dark) at bottom.
        win = slice(ys.start + 1, ys.start + max(h // 3, 1) + 1)
        img[:, win, xs] = np.minimum(color[:, None, None] * 1.5, 1.0)
        wheels = slice(ys.stop - max(h // 5, 1), ys.stop)
        img[:, wheels, xs] = 0.12
    elif h >= 4:  # pedestrians / bicycles: brighter head region
        head = slice(ys.start, ys.start + max(h // 4, 1))
        img[:, head, xs] = np.minimum(color[:, None, None] * 1.4, 1.0)
    # 1-px darker border for edge contrast.
    img[:, ys.start, xs] *= 0.5
    img[:, ys.stop - 1, xs] *= 0.5
    img[:, ys, xs.start] *= 0.5
    img[:, ys, xs.stop - 1] *= 0.5


def _apply_camera_degradation(
    img: np.ndarray, profile: ContextProfile, rng: np.random.Generator
) -> np.ndarray:
    deg = profile.camera
    out = img * deg.brightness
    if deg.contrast != 1.0:
        mean = out.mean()
        out = (out - mean) * deg.contrast + mean
    if deg.washout > 0:
        out = (1.0 - deg.washout) * out + deg.washout * 0.75
    if deg.blur_sigma > 0:
        out = ndimage.gaussian_filter(out, sigma=(0, deg.blur_sigma, deg.blur_sigma))
    if deg.motion_blur > 1:
        out = ndimage.uniform_filter1d(out, size=deg.motion_blur, axis=2)
    if deg.streak_density > 0:
        size = out.shape[2]
        n_streaks = int(deg.streak_density * size)
        cols = rng.choice(size, size=n_streaks, replace=False)
        for col in cols:
            start = int(rng.integers(0, out.shape[1] // 2))
            length = int(rng.integers(out.shape[1] // 4, out.shape[1]))
            out[:, start : start + length, col] += 0.22
    if deg.speckle_density > 0:
        mask = rng.random(out.shape[1:]) < deg.speckle_density
        out[:, mask] = 0.95
    out = out + rng.normal(0.0, deg.noise, size=out.shape).astype(np.float32)
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def _draw_phantoms(
    img: np.ndarray, profile: ContextProfile, rng: np.random.Generator
) -> None:
    """Paint phantom obstacles (fog banks / snow clumps / wiper smears).

    Phantoms are vehicle-sized grayish patches with a darker border —
    enough object-like structure to fool a camera detector, but they
    exist in no other modality and are absent from the ground truth.
    The phantom count is Poisson with the context's ``phantom_rate``.
    Both stereo views must call this with the *same* rng state so the
    phantom field is consistent across the pair.
    """
    rate = profile.camera.phantom_rate
    if rate <= 0:
        return
    size = img.shape[1]
    horizon = int(0.35 * size)
    count = int(rng.poisson(rate))
    for _ in range(count):
        w = float(rng.uniform(10, 26))
        h = float(rng.uniform(8, 18))
        cx = float(rng.uniform(w / 2 + 1, size - w / 2 - 1))
        cy = float(rng.uniform(horizon, size - h / 2 - 1))
        box = np.array([cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2])
        ys, xs = _slice_box(box, size)
        if ys.stop - ys.start < 2 or xs.stop - xs.start < 2:
            continue
        tone = float(rng.uniform(0.45, 0.7))
        tint = np.array([tone, tone * rng.uniform(0.9, 1.1), tone], dtype=np.float32)
        img[:, ys, xs] = 0.4 * img[:, ys, xs] + 0.6 * tint[:, None, None]
        img[:, ys.start, xs] *= 0.7
        img[:, ys.stop - 1, xs] *= 0.7
        img[:, ys, xs.start] *= 0.7
        img[:, ys, xs.stop - 1] *= 0.7


def render_camera(
    scene: Scene,
    profile: ContextProfile,
    rng: np.random.Generator,
    side: str = "right",
) -> np.ndarray:
    """Render one stereo camera view: (3, S, S) float32 in [0, 1].

    The right camera defines the canonical annotation frame; left-camera
    objects are shifted by their (depth-dependent) stereo disparity.  The
    left camera also gets a vignette and slightly more noise.
    """
    size = scene.image_size
    img = _render_camera_background(profile, rng, size)
    for obj in sorted(scene.objects, key=lambda o: o.depth, reverse=True):
        shift = disparity_of(obj) if side == "left" else 0.0
        _draw_camera_object(img, obj, shift)
    # Seed phantoms from the scene identity (not the passed rng) so the
    # left and right renders see the same phantom field.
    phantom_seed = scene.objects[0].appearance_seed if scene.objects else scene.image_size
    _draw_phantoms(img, profile, np.random.default_rng(phantom_seed + 77))
    img = _apply_camera_degradation(img, profile, rng)
    if side == "left":
        yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
        r2 = ((yy / size - 0.5) ** 2 + (xx / size - 0.5) ** 2) * 4.0
        vignette = 1.0 - 0.12 * r2
        img = img * vignette[None]
        img = img + rng.normal(0.0, 0.012, size=img.shape).astype(np.float32)
        img = np.clip(img, 0.0, 1.0).astype(np.float32)
    return img


# ----------------------------------------------------------------------
# Lidar
# ----------------------------------------------------------------------
def render_lidar(
    scene: Scene, profile: ContextProfile, rng: np.random.Generator
) -> np.ndarray:
    """Render the lidar map: (2, S, S) = (intensity, height) in [0, 1].

    Objects appear as point clusters with a strongly-returning outline
    (the surface facing the sensor) over a sparser interior; the second
    channel carries the cluster's height profile, the geometric class cue
    a real spinning lidar provides.
    """
    size = scene.image_size
    deg = profile.lidar
    img = np.zeros((2, size, size), dtype=np.float32)
    # Sparse ground returns.
    ground = rng.random((size, size)) < 0.015
    img[0][ground] = 0.10
    for obj in scene.objects:
        ys, xs = _slice_box(obj.box, size)
        h, w = ys.stop - ys.start, xs.stop - xs.start
        if h < 2 or w < 2:
            continue
        orng = _object_rng(obj, salt=1)
        density = CLASS_LIDAR_DENSITY[obj.class_name] * (1.0 - deg.dropout)
        mask = orng.random((h, w)) < density
        # Object outline returns are near-certain (surface facing sensor),
        # unless dropout is severe.
        edge = np.zeros((h, w), dtype=bool)
        edge[0, :] = edge[-1, :] = edge[:, 0] = edge[:, -1] = True
        mask |= edge & (orng.random((h, w)) < (1.0 - deg.dropout))
        intensity = CLASS_LIDAR_INTENSITY[obj.class_name]
        # Fog attenuation hits distant (high-depth) objects hardest.
        atten = deg.attenuation + (1.0 - deg.attenuation) * (1.0 - obj.depth)
        region = img[0, ys, xs]
        region[mask] = intensity * atten * float(orng.uniform(0.92, 1.08))
        img[0, ys, xs] = region
        height = CLASS_LIDAR_HEIGHT[obj.class_name]
        height_region = img[1, ys, xs]
        height_region[mask] = height * atten
        img[1, ys, xs] = height_region
    if deg.spurious > 0:
        phantom = rng.random((size, size)) < deg.spurious
        img[0][phantom] = rng.uniform(0.3, 0.9, size=int(phantom.sum())).astype(np.float32)
        img[1][phantom] = rng.uniform(0.1, 0.9, size=int(phantom.sum())).astype(np.float32)
    img[0] += rng.normal(0.0, deg.noise, size=(size, size)).astype(np.float32)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


# ----------------------------------------------------------------------
# Radar
# ----------------------------------------------------------------------
def render_radar(
    scene: Scene, profile: ContextProfile, rng: np.random.Generator
) -> np.ndarray:
    """Render the radar map: (1, S, S) in [0, 1].

    Rendered on a half-resolution grid then upsampled: the Navtech
    CTS350-X has fine azimuth resolution but still blurs object extent
    relative to camera/lidar, and carries no appearance cue beyond blob
    amplitude (RCS) and footprint.
    """
    size = scene.image_size
    deg = profile.radar
    factor = 2
    coarse = size // factor
    grid = np.zeros((coarse, coarse), dtype=np.float32)
    yy_full, xx_full = np.mgrid[0:coarse, 0:coarse].astype(np.float32)
    for obj in scene.objects:
        orng = _object_rng(obj, salt=2)
        amp = CLASS_RCS[obj.class_name] * float(orng.uniform(0.85, 1.1))
        # Reflectivity footprint: the object's extent at coarse resolution,
        # modulated by the class's return texture (surface structure /
        # micro-doppler signature).
        box = obj.box / factor
        ys, xs = _slice_box(box, coarse)
        angle, period = CLASS_RADAR_TEXTURE[obj.class_name]
        local_y = yy_full[ys, xs]
        local_x = xx_full[ys, xs]
        phase = (local_x * np.cos(angle) + local_y * np.sin(angle)) * (2 * np.pi / period)
        stripes = 0.5 * (1.0 + np.sin(phase))
        footprint = amp * (0.55 + 0.45 * stripes)
        grid[ys, xs] = np.maximum(grid[ys, xs], footprint.astype(np.float32))
        if orng.random() < deg.ghost_prob:
            # Multipath ghost: faint copy displaced radially.
            off = float(orng.uniform(3.0, 6.0))
            gbox = box + off
            gys, gxs = _slice_box(gbox, coarse)
            if gys.stop > gys.start and gxs.stop > gxs.start:
                grid[gys, gxs] = np.maximum(grid[gys, gxs], 0.3 * amp)
    # Beam spread: blur the footprints, then add clutter + receiver noise.
    grid = ndimage.gaussian_filter(grid, sigma=0.7)
    clutter = rng.exponential(deg.clutter, size=grid.shape).astype(np.float32) * 0.3
    grid = grid + clutter
    grid = grid + rng.normal(0.0, deg.noise, size=grid.shape).astype(np.float32)
    full = np.repeat(np.repeat(grid, factor, axis=0), factor, axis=1)
    return np.clip(full[None], 0.0, 1.0).astype(np.float32)


def render_all_sensors(
    scene: Scene, profile: ContextProfile, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Render every sensor for ``scene``; keys follow :data:`SENSORS`."""
    return {
        "camera_left": render_camera(scene, profile, rng, side="left"),
        "camera_right": render_camera(scene, profile, rng, side="right"),
        "radar": render_radar(scene, profile, rng),
        "lidar": render_lidar(scene, profile, rng),
    }
