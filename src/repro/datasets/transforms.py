"""Input normalization and augmentation for sensor tensors."""

from __future__ import annotations

import numpy as np

from .radiate import Sample

__all__ = [
    "SENSOR_NORMALIZATION",
    "normalize_sensor",
    "normalize_sample",
    "horizontal_flip",
    "batch_sensors",
]

# Per-modality (mean, std) chosen from the simulator's output statistics;
# fixed constants (like ImageNet normalization) rather than per-sample
# whitening, so the stems see absolute context cues such as darkness.
SENSOR_NORMALIZATION: dict[str, tuple[float, float]] = {
    "camera_left": (0.45, 0.25),
    "camera_right": (0.45, 0.25),
    "lidar": (0.10, 0.20),
    "radar": (0.10, 0.15),
}


def normalize_sensor(name: str, array: np.ndarray) -> np.ndarray:
    """Standardize one sensor tensor with its modality constants."""
    mean, std = SENSOR_NORMALIZATION[name]
    return ((array - mean) / std).astype(np.float32)


def normalize_sample(sample: Sample) -> dict[str, np.ndarray]:
    """Normalized copies of every sensor tensor in ``sample``."""
    return {name: normalize_sensor(name, arr) for name, arr in sample.sensors.items()}


def horizontal_flip(
    sensors: dict[str, np.ndarray], boxes: np.ndarray, image_size: int
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Mirror all sensors and boxes about the vertical axis (augmentation)."""
    flipped = {name: arr[:, :, ::-1].copy() for name, arr in sensors.items()}
    out = boxes.copy()
    if len(out):
        out[:, 0] = image_size - 1 - boxes[:, 2]
        out[:, 2] = image_size - 1 - boxes[:, 0]
    return flipped, out


def batch_sensors(
    samples: list[dict[str, np.ndarray]], sensor: str
) -> np.ndarray:
    """Stack one sensor across normalized samples into an (N,C,H,W) batch."""
    return np.stack([s[sensor] for s in samples]).astype(np.float32)
