"""Train/test splitting.

The paper uses a 70:30 train-test split across the dataset (Sec. 5).  We
stratify by context so that every driving scenario appears in both splits
(required for the per-scenario evaluation of Fig. 5 / Table 3).
"""

from __future__ import annotations

import numpy as np

from .radiate import RadiateSim

__all__ = ["stratified_split", "Subset"]


def stratified_split(
    dataset: RadiateSim,
    train_fraction: float = 0.7,
    seed: int = 0,
) -> tuple[list[int], list[int]]:
    """Split sample indices into (train, test), stratified by context.

    Each context contributes ``round(train_fraction * n)`` samples to the
    train split (at least one sample to each side when the context has two
    or more samples).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train: list[int] = []
    test: list[int] = []
    contexts = dataset.contexts
    for context in sorted(set(contexts)):
        idxs = [i for i, c in enumerate(contexts) if c == context]
        perm = rng.permutation(len(idxs))
        n_train = int(round(train_fraction * len(idxs)))
        if len(idxs) >= 2:
            n_train = min(max(n_train, 1), len(idxs) - 1)
        for j, p in enumerate(perm):
            (train if j < n_train else test).append(idxs[p])
    return sorted(train), sorted(test)


class Subset:
    """A view of a dataset restricted to a list of indices."""

    def __init__(self, dataset: RadiateSim, indices: list[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, i: int):
        return self.dataset[self.indices[i]]

    def __iter__(self):
        for i in self.indices:
            yield self.dataset[i]

    @property
    def contexts(self) -> list[str]:
        all_contexts = self.dataset.contexts
        return [all_contexts[i] for i in self.indices]

    def indices_for_context(self, context: str) -> list[int]:
        """Positions *within this subset* whose sample has ``context``."""
        return [j for j, c in enumerate(self.contexts) if c == context]
