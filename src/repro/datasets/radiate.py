"""RadiateSim: the RADIATE-like multi-sensor object-detection dataset.

This stands in for the real RADIATE dataset [22] (see DESIGN.md,
substitution table).  It produces deterministic, seed-reproducible samples,
each carrying the four sensor tensors, canonical-frame annotations and a
context label — exactly the interface the EcoFusion pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .contexts import CONTEXT_NAMES, CONTEXTS, ContextProfile, get_context
from .scenes import Scene, generate_scene
from .sensors import SENSOR_CHANNELS, SENSORS, render_all_sensors

__all__ = ["Sample", "RadiateSim", "default_counts", "realistic_counts"]


@dataclass
class Sample:
    """One dataset frame.

    Attributes
    ----------
    sensors:
        Mapping sensor-name -> float32 array ``(C_s, S, S)``.
    boxes:
        ``(d, 4)`` ground-truth boxes in the canonical frame (x1,y1,x2,y2).
    labels:
        ``(d,)`` one-based class ids.
    context:
        Driving-context name (e.g. ``"fog"``).
    sample_id:
        Stable integer id within the dataset.
    uid:
        Globally unique identity (includes the dataset's seed/config), so
        caches keyed on samples from *different* datasets never collide.
    """

    sensors: dict[str, np.ndarray]
    boxes: np.ndarray
    labels: np.ndarray
    context: str
    sample_id: int
    scene: Scene = field(repr=False, default=None)
    uid: str = ""

    def __post_init__(self) -> None:
        if not self.uid:
            self.uid = f"anon:{self.sample_id}"

    @property
    def num_objects(self) -> int:
        return int(self.boxes.shape[0])


def default_counts(per_context: int = 40) -> dict[str, int]:
    """Uniform sample counts across the eight contexts."""
    return {name: per_context for name in CONTEXT_NAMES}


# Relative frequency of each driving context in a realistic recording
# campaign: clear conditions dominate; dense fog and snowfall are rare.
# (RADIATE itself is weighted toward ordinary driving with shorter
# adverse-weather sequences.)  Keys sum to 8.0 so ``realistic_counts(n)``
# yields roughly ``8 * n`` samples, comparable to ``default_counts(n)``.
REALISTIC_CONTEXT_WEIGHTS: dict[str, float] = {
    "city": 1.6,
    "junction": 1.3,
    "motorway": 1.3,
    "rural": 1.2,
    "rain": 1.0,
    "night": 0.9,
    "fog": 0.5,
    "snow": 0.5,
}


def realistic_counts(per_context: int = 40) -> dict[str, int]:
    """Context counts weighted by realistic driving-condition frequency."""
    return {
        name: max(int(round(per_context * REALISTIC_CONTEXT_WEIGHTS[name])), 8)
        for name in CONTEXT_NAMES
    }


class RadiateSim:
    """Deterministic synthetic RADIATE-like dataset.

    Parameters
    ----------
    counts:
        Mapping context-name -> number of samples.  Defaults to 40 per
        context (320 samples).
    seed:
        Master seed; every sample derives its own child seed, so any
        sample can be regenerated independently.
    image_size:
        Side length of the square sensor frames (must be divisible by 8
        for the detector's stride-8 feature maps).
    lazy:
        When True, samples are rendered on first access instead of at
        construction (useful for tests that touch a few samples).
    """

    def __init__(
        self,
        counts: dict[str, int] | None = None,
        seed: int = 0,
        image_size: int = 64,
        lazy: bool = False,
    ) -> None:
        if image_size % 8 != 0:
            raise ValueError("image_size must be divisible by 8")
        self.counts = dict(counts) if counts is not None else default_counts()
        for name in self.counts:
            get_context(name)  # validate
        self.seed = seed
        self.image_size = image_size
        self._index: list[tuple[str, int]] = []
        for name in CONTEXT_NAMES:
            for _ in range(self.counts.get(name, 0)):
                self._index.append((name, len(self._index)))
        self._cache: dict[int, Sample] = {}
        if not lazy:
            for i in range(len(self._index)):
                self._cache[i] = self._build(i)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, idx: int) -> Sample:
        if idx < 0:
            idx += len(self)
        if not 0 <= idx < len(self):
            raise IndexError(f"sample index {idx} out of range [0, {len(self)})")
        if idx not in self._cache:
            self._cache[idx] = self._build(idx)
        return self._cache[idx]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    # ------------------------------------------------------------------
    def _build(self, idx: int) -> Sample:
        context_name, sample_id = self._index[idx]
        profile: ContextProfile = CONTEXTS[context_name]
        rng = np.random.default_rng(self.seed * 1_000_003 + sample_id)
        scene = generate_scene(profile, rng, image_size=self.image_size)
        sensors = render_all_sensors(scene, profile, rng)
        counts_token = "-".join(f"{k}{v}" for k, v in sorted(self.counts.items()))
        return Sample(
            sensors=sensors,
            boxes=scene.boxes,
            labels=scene.labels,
            context=context_name,
            sample_id=sample_id,
            scene=scene,
            uid=f"radiate:{self.seed}:{self.image_size}:{counts_token}:{sample_id}",
        )

    # ------------------------------------------------------------------
    @property
    def contexts(self) -> list[str]:
        """Context label of every sample, in index order."""
        return [ctx for ctx, _ in self._index]

    def indices_for_context(self, context: str) -> list[int]:
        get_context(context)
        return [i for i, (ctx, _) in enumerate(self._index) if ctx == context]

    def sensor_shape(self, sensor: str) -> tuple[int, int, int]:
        return (SENSOR_CHANNELS[sensor], self.image_size, self.image_size)

    @staticmethod
    def sensor_names() -> tuple[str, ...]:
        return SENSORS
