"""Mean average precision (PASCAL VOC, IoU >= 0.5).

Matches the paper's protocol (Sec. 5): "We compute the mAP for bounding
boxes with an intersection-over-union (IoU) >= 0.5, aligning with the
PASCAL Visual Object Classes (VOC) Challenge."  AP uses the all-points
interpolated precision-recall area (VOC 2010+), averaged over classes
that appear in the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.contexts import CLASS_NAMES
from ..perception.boxes import iou_matrix
from ..perception.detections import Detections

__all__ = ["MapResult", "average_precision", "evaluate_map"]


@dataclass
class MapResult:
    """mAP plus the per-class breakdown."""

    mean_ap: float
    per_class: dict[str, float] = field(default_factory=dict)
    num_images: int = 0
    num_ground_truth: int = 0

    @property
    def percent(self) -> float:
        return 100.0 * self.mean_ap


def average_precision(
    scores: np.ndarray, is_true_positive: np.ndarray, num_ground_truth: int
) -> float:
    """All-points interpolated AP from per-detection outcomes.

    Parameters
    ----------
    scores:
        Confidence of each detection (any order).
    is_true_positive:
        Boolean flag per detection.
    num_ground_truth:
        Total ground-truth instances of this class.
    """
    if num_ground_truth == 0:
        return float("nan")
    if scores.size == 0:
        return 0.0
    order = np.argsort(-scores)
    tp = is_true_positive[order].astype(np.float64)
    fp = 1.0 - tp
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / num_ground_truth
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    # Envelope the precision curve (monotone non-increasing from the right).
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    # Integrate over recall steps.
    recall = np.concatenate([[0.0], recall])
    precision = np.concatenate([[precision[0] if precision.size else 0.0], precision])
    return float(np.sum((recall[1:] - recall[:-1]) * precision[1:]))


def evaluate_map(
    detections: list[Detections],
    gt_boxes: list[np.ndarray],
    gt_labels: list[np.ndarray],
    iou_threshold: float = 0.5,
    class_names: tuple[str, ...] = CLASS_NAMES,
) -> MapResult:
    """VOC mAP over a list of images.

    Each ground-truth box may match at most one detection (greedy, in
    confidence order).  Classes absent from the ground truth are skipped
    (their AP is undefined), matching the VOC convention.
    """
    if not (len(detections) == len(gt_boxes) == len(gt_labels)):
        raise ValueError("detections / gt_boxes / gt_labels must align")
    num_classes = len(class_names)
    per_class_scores: list[list[float]] = [[] for _ in range(num_classes + 1)]
    per_class_tp: list[list[bool]] = [[] for _ in range(num_classes + 1)]
    gt_count = np.zeros(num_classes + 1, dtype=np.int64)

    for dets, boxes, labels in zip(detections, gt_boxes, gt_labels):
        boxes = np.asarray(boxes).reshape(-1, 4)
        labels = np.asarray(labels).reshape(-1)
        for cls in range(1, num_classes + 1):
            gt_count[cls] += int((labels == cls).sum())
        matched = np.zeros(len(boxes), dtype=bool)
        order = np.argsort(-dets.scores)
        # One pairwise IoU pass per image; the greedy matcher below
        # reads rows of it instead of recomputing per detection.
        iou_full = (
            iou_matrix(dets.boxes, boxes)
            if len(dets) and len(boxes)
            else None
        )
        for j in order:
            cls = int(dets.labels[j])
            if not 1 <= cls <= num_classes:
                continue
            candidates = np.flatnonzero((labels == cls) & ~matched)
            hit = False
            if candidates.size:
                assert iou_full is not None
                ious = iou_full[j, candidates]
                best = int(np.argmax(ious))
                if ious[best] >= iou_threshold:
                    matched[candidates[best]] = True
                    hit = True
            per_class_scores[cls].append(float(dets.scores[j]))
            per_class_tp[cls].append(hit)

    per_class_ap: dict[str, float] = {}
    valid: list[float] = []
    for cls in range(1, num_classes + 1):
        if gt_count[cls] == 0:
            continue
        ap = average_precision(
            np.asarray(per_class_scores[cls]),
            np.asarray(per_class_tp[cls], dtype=bool),
            int(gt_count[cls]),
        )
        per_class_ap[class_names[cls - 1]] = ap
        valid.append(ap)
    mean_ap = float(np.mean(valid)) if valid else 0.0
    return MapResult(
        mean_ap=mean_ap,
        per_class=per_class_ap,
        num_images=len(detections),
        num_ground_truth=int(gt_count.sum()),
    )
