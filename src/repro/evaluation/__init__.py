"""``repro.evaluation`` — metrics, experiment runner and artifact cache."""

from .cache import SystemSpec, TrainedSystem, build_system, get_or_build_system
from .loss_metrics import FusionLossConfig, fusion_loss, fusion_loss_breakdown
from .map import MapResult, average_precision, evaluate_map
from .reports import format_paper_comparison, format_series, format_table
from .runner import EvalResult, evaluate_ecofusion, evaluate_static_config
from .visualize import ascii_boxes, ascii_image, render_detections, render_sample

__all__ = [
    "SystemSpec",
    "TrainedSystem",
    "build_system",
    "get_or_build_system",
    "FusionLossConfig",
    "fusion_loss",
    "fusion_loss_breakdown",
    "MapResult",
    "average_precision",
    "evaluate_map",
    "format_paper_comparison",
    "format_series",
    "format_table",
    "EvalResult",
    "evaluate_ecofusion",
    "evaluate_static_config",
    "ascii_boxes",
    "ascii_image",
    "render_detections",
    "render_sample",
]
