"""ASCII table/series formatting for benchmark output.

Benchmarks print the same rows the paper's tables report; these helpers
keep the formatting uniform and provide the paper-vs-measured layout used
in EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = ["format_table", "format_paper_comparison", "format_series"]


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_paper_comparison(
    headers: list[str],
    paper_rows: list[list[object]],
    measured_rows: list[list[object]],
    title: str,
) -> str:
    """Interleave paper-reported and measured rows for easy eyeballing."""
    rows: list[list[object]] = []
    for paper, measured in zip(paper_rows, measured_rows):
        rows.append(["paper"] + list(paper))
        rows.append(["ours"] + list(measured))
    return format_table(["source"] + headers, rows, title=title)


def format_series(name: str, xs: list[object], ys: list[object]) -> str:
    """One figure series as aligned x/y columns."""
    return format_table(["x", name], [[x, y] for x, y in zip(xs, ys)])


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
