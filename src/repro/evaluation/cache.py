"""Trained-system construction and on-disk artifact caching.

Training the full system (7 branches + stems + 2 learned gates) in pure
numpy takes minutes; examples, tests and every benchmark share one
deterministic training run through :func:`get_or_build_system`, which
persists weights and loss tables under ``.artifacts/`` keyed by the
system spec.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..core.config import BRANCHES, build_config_library
from ..core.ecofusion import BranchOutputCache, EcoFusionModel
from ..core.gating import AttentionGate, DeepGate, KnowledgeGate, LossBasedGate
from ..core.stems import build_stems
from ..core.training import (
    TrainingConfig,
    compute_loss_table,
    gate_feature_matrix,
    train_gate,
    train_perception,
)
from ..datasets.contexts import CLASS_NAMES
from ..datasets.radiate import RadiateSim, default_counts, realistic_counts
from ..datasets.splits import Subset, stratified_split
from ..hardware.profiler import build_system_costs
from ..nn.serialization import load_state, save_state
from ..perception.detector import BranchDetector
from .loss_metrics import fusion_loss

__all__ = ["SystemSpec", "TrainedSystem", "build_system", "get_or_build_system"]

DEFAULT_ARTIFACT_ROOT = Path(__file__).resolve().parents[3] / ".artifacts"


@dataclass(frozen=True)
class SystemSpec:
    """Everything that determines a trained system (and its cache key)."""

    seed: int = 0
    per_context: int = 40
    # "realistic" weights contexts by real-world frequency (clear driving
    # dominates, fog/snow are rare); "uniform" gives per_context each.
    context_mix: str = "realistic"
    image_size: int = 64
    train_fraction: float = 0.7
    iterations: int = 800
    batch_size: int = 6
    learning_rate: float = 2.0e-3
    gate_iterations: int = 600
    gate_shrink: float = 0.35
    augment: bool = True
    # Bump when the simulator or architecture changes incompatibly, so
    # stale on-disk artifacts are never silently reused.
    version: int = 6

    def counts(self) -> dict[str, int]:
        if self.context_mix == "realistic":
            return realistic_counts(self.per_context)
        if self.context_mix == "uniform":
            return default_counts(self.per_context)
        raise ValueError(f"unknown context_mix '{self.context_mix}'")

    def cache_key(self) -> str:
        fields = asdict(self)
        parts = [f"{k}={fields[k]}" for k in sorted(fields)]
        return "ecofusion_" + "_".join(parts).replace(".", "p")


@dataclass
class TrainedSystem:
    """A fully-trained EcoFusion system ready for evaluation."""

    spec: SystemSpec
    dataset: RadiateSim
    train_split: Subset
    test_split: Subset
    model: EcoFusionModel
    gates: dict[str, object]
    train_loss_table: np.ndarray
    test_loss_table: np.ndarray
    perception_history: list[float] = field(default_factory=list)
    cache: BranchOutputCache = field(default_factory=BranchOutputCache)
    # Root directory this system's artifacts live under (set by
    # get_or_build_system); derived artifacts — e.g. drive-trained gates
    # (repro.core.training_drive) — persist next to them by default.
    artifact_root: str | None = None

    @property
    def library(self):
        return self.model.library


def _build_untrained(spec: SystemSpec):
    """Deterministic construction of dataset, splits and raw modules."""
    dataset = RadiateSim(
        spec.counts(), seed=spec.seed, image_size=spec.image_size
    )
    train_idx, test_idx = stratified_split(dataset, spec.train_fraction, seed=spec.seed)
    train_split = Subset(dataset, train_idx)
    test_split = Subset(dataset, test_idx)
    rng = np.random.default_rng(spec.seed)
    stems = build_stems(rng)
    branches = {
        name: BranchDetector(
            num_sensors=len(braspec.sensors),
            num_classes=len(CLASS_NAMES),
            image_size=spec.image_size,
            rng=rng,
        )
        for name, braspec in BRANCHES.items()
    }
    gate_rng = np.random.default_rng(spec.seed + 7)
    library = build_config_library()
    deep = DeepGate(len(library), rng=gate_rng, image_size=spec.image_size)
    attention = AttentionGate(len(library), rng=gate_rng, image_size=spec.image_size)
    return dataset, train_split, test_split, stems, branches, library, deep, attention


def _assemble(
    spec: SystemSpec, dataset, train_split, test_split, stems, branches,
    library, deep, attention,
) -> tuple[EcoFusionModel, dict[str, object]]:
    costs = build_system_costs(
        library, stems, branches, attention.network, spec.image_size
    )
    model = EcoFusionModel(
        stems=stems, branches=branches, library=library, costs=costs,
        image_size=spec.image_size,
    )
    gates: dict[str, object] = {
        "knowledge": KnowledgeGate(library),
        "deep": deep,
        "attention": attention,
        "loss_based": LossBasedGate(),
    }
    return model, gates


def _install_oracle(
    gates: dict[str, object],
    splits: list[Subset],
    tables: list[np.ndarray],
) -> None:
    oracle: LossBasedGate = gates["loss_based"]  # type: ignore[assignment]
    mapping: dict[int, np.ndarray] = {}
    for split, table in zip(splits, tables):
        for i, sample in enumerate(split):
            mapping[sample.sample_id] = table[i]
    oracle.set_true_losses(mapping)


def build_system(spec: SystemSpec | None = None, verbose: bool = False) -> TrainedSystem:
    """Train the full system from scratch (several minutes in numpy)."""
    spec = spec or SystemSpec()
    (dataset, train_split, test_split, stems, branches,
     library, deep, attention) = _build_untrained(spec)

    train_cfg = TrainingConfig(
        iterations=spec.iterations,
        batch_size=spec.batch_size,
        learning_rate=spec.learning_rate,
        gate_iterations=spec.gate_iterations,
        gate_shrink=spec.gate_shrink,
        augment=spec.augment,
        seed=spec.seed,
        verbose=verbose,
    )
    history = train_perception(stems, branches, train_split, train_cfg)

    model, gates = _assemble(
        spec, dataset, train_split, test_split, stems, branches, library, deep, attention
    )
    cache = BranchOutputCache()
    train_table = compute_loss_table(model, train_split, fusion_loss, cache=cache)
    test_table = compute_loss_table(model, test_split, fusion_loss, cache=cache)

    features = gate_feature_matrix(model, train_split)
    train_gate(deep, features, train_table, train_cfg)
    train_gate(attention, features, train_table, train_cfg)
    _install_oracle(gates, [train_split, test_split], [train_table, test_table])

    return TrainedSystem(
        spec=spec,
        dataset=dataset,
        train_split=train_split,
        test_split=test_split,
        model=model,
        gates=gates,
        train_loss_table=train_table,
        test_loss_table=test_table,
        perception_history=history,
        cache=cache,
    )


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def _save_system(system: TrainedSystem, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    state: dict[str, np.ndarray] = {}
    for sensor, stem in system.model.stems.items():
        for key, value in stem.state_dict().items():
            state[f"stem.{sensor}.{key}"] = value
    for name, branch in system.model.branches.items():
        for key, value in branch.state_dict().items():
            state[f"branch.{name}.{key}"] = value
    for gate_name in ("deep", "attention"):
        network = system.gates[gate_name].network  # type: ignore[union-attr]
        for key, value in network.state_dict().items():
            state[f"gate.{gate_name}.{key}"] = value
    save_state(state, directory / "weights.npz")
    np.savez_compressed(
        directory / "tables.npz",
        train_loss_table=system.train_loss_table,
        test_loss_table=system.test_loss_table,
        history=np.asarray(system.perception_history, dtype=np.float64),
    )
    meta = {"spec": asdict(system.spec), "format": 1}
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))


def _split_state(state: dict[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    plen = len(prefix)
    return {k[plen:]: v for k, v in state.items() if k.startswith(prefix)}


def _load_system(spec: SystemSpec, directory: Path) -> TrainedSystem:
    meta = json.loads((directory / "meta.json").read_text())
    if meta.get("spec") != asdict(spec):
        raise ValueError("cached artifact spec mismatch")
    (dataset, train_split, test_split, stems, branches,
     library, deep, attention) = _build_untrained(spec)
    state = load_state(directory / "weights.npz")
    for sensor, stem in stems.items():
        stem.load_state_dict(_split_state(state, f"stem.{sensor}."))
    for name, branch in branches.items():
        branch.load_state_dict(_split_state(state, f"branch.{name}."))
    deep.network.load_state_dict(_split_state(state, "gate.deep."))
    attention.network.load_state_dict(_split_state(state, "gate.attention."))
    deep.network.eval()
    attention.network.eval()

    model, gates = _assemble(
        spec, dataset, train_split, test_split, stems, branches, library, deep, attention
    )
    with np.load(directory / "tables.npz") as archive:
        train_table = archive["train_loss_table"]
        test_table = archive["test_loss_table"]
        history = [float(v) for v in archive["history"]]
    # Restore the shrinkage calibration train_gate installed (the prior is
    # a deterministic function of the persisted train loss table).
    deep.set_prior(train_table.mean(axis=0), shrink=spec.gate_shrink)
    attention.set_prior(train_table.mean(axis=0), shrink=spec.gate_shrink)
    _install_oracle(gates, [train_split, test_split], [train_table, test_table])
    return TrainedSystem(
        spec=spec,
        dataset=dataset,
        train_split=train_split,
        test_split=test_split,
        model=model,
        gates=gates,
        train_loss_table=train_table,
        test_loss_table=test_table,
        perception_history=history,
    )


_MEMORY_CACHE: dict[str, TrainedSystem] = {}


def get_or_build_system(
    spec: SystemSpec | None = None,
    root: str | Path | None = None,
    force_rebuild: bool = False,
    verbose: bool = False,
) -> TrainedSystem:
    """Return the trained system for ``spec``, building it at most once.

    Lookup order: in-process memo -> on-disk artifacts -> full training
    run (which is then persisted).
    """
    from ..telemetry import get_default

    tel = get_default()
    spec = spec or SystemSpec()
    key = spec.cache_key()
    root = Path(root) if root is not None else DEFAULT_ARTIFACT_ROOT
    if not force_rebuild and key in _MEMORY_CACHE:
        # artifact_root stays the root the system was *materialized*
        # from — that directory really holds its weights, so derived
        # artifacts (drive-trained gates) land next to them.  A memory
        # hit never re-points the shared instance at the latest caller's
        # root; callers wanting another destination pass it explicitly
        # (ensure_drive_gates(root=...) / run_sweep(artifact_root=...)).
        tel.metrics.counter("artifacts.system_memo_hits").inc()
        return _MEMORY_CACHE[key]
    directory = root / key
    system: TrainedSystem | None = None
    if not force_rebuild and (directory / "meta.json").exists():
        # Retry the load once before declaring the artifact corrupt: a
        # concurrent writer mid-os.replace or a transient I/O hiccup
        # should not cost a multi-minute retrain.
        for attempt in (1, 2):
            try:
                with tel.tracer.span("system_load", key=key):
                    system = _load_system(spec, directory)
                tel.metrics.counter("artifacts.system_loads").inc()
                break
            except Exception as error:
                if attempt == 1:
                    tel.metrics.counter("artifacts.system_load_retries").inc()
                    continue
                print(
                    f"[cache] discarding unreadable artifact ({error}); retraining"
                )
                system = None
    if system is None:
        with tel.tracer.span("system_build", key=key):
            system = build_system(spec, verbose=verbose)
            _save_system(system, directory)
        tel.metrics.counter("artifacts.system_builds").inc()
    system.artifact_root = str(root)
    _MEMORY_CACHE[key] = system
    return system
