"""The fusion-loss metric L_f (paper Sec. 3.3).

The paper defines the loss as "the combined regression and classification
loss (using smooth L1 loss and cross-entropy loss, respectively) between
the ground-truth Y and the Y-hat predicted by the model".  Applied to the
*fused detections* of a configuration, that becomes a matching-based
metric:

* each ground-truth object is greedily matched to the highest-confidence
  overlapping detection; a correct-class match contributes its negative
  log-confidence (the cross-entropy term) plus the smooth-L1 error of the
  box coordinates (normalized by a reference length);
* a wrong-class match contributes the cross-entropy of the small residual
  probability assigned to the true class;
* a missed object contributes the cross-entropy floor (the model assigned
  the true class ~zero probability);
* confident false positives add a background cross-entropy term.

This is the scalar the gates are trained to regress and the "Avg. Loss"
reported in Table 2 / Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perception.boxes import iou_matrix
from ..perception.detections import Detections

__all__ = ["FusionLossConfig", "fusion_loss", "fusion_loss_breakdown"]


@dataclass(frozen=True)
class FusionLossConfig:
    """Weights and floors of the fusion-loss metric.

    ``confidence_floor`` caps the cross-entropy at -log(floor) ~= 4.6, so
    one catastrophic configuration cannot produce unbounded targets for
    the gate regression.
    """

    match_iou: float = 0.4
    confidence_floor: float = 1.0e-2
    wrong_class_confidence: float = 5.0e-2
    box_norm: float = 16.0
    smooth_l1_beta: float = 1.0
    regression_weight: float = 1.0
    false_positive_weight: float = 0.3
    false_positive_score: float = 0.3


DEFAULT_CONFIG = FusionLossConfig()


def _smooth_l1(diff: np.ndarray, beta: float) -> np.ndarray:
    ad = np.abs(diff)
    return np.where(ad < beta, 0.5 * ad * ad / beta, ad - 0.5 * beta)


def fusion_loss_breakdown(
    detections: Detections,
    gt_boxes: np.ndarray,
    gt_labels: np.ndarray,
    config: FusionLossConfig = DEFAULT_CONFIG,
) -> dict[str, float]:
    """Classification / regression / false-positive components of L_f."""
    gt_boxes = np.asarray(gt_boxes, dtype=np.float64).reshape(-1, 4)
    gt_labels = np.asarray(gt_labels).reshape(-1)
    n_gt = len(gt_boxes)
    floor_nll = -np.log(config.confidence_floor)

    if n_gt == 0:
        # Pure false-positive regime.
        fp = detections.scores[detections.scores > config.false_positive_score]
        fp_term = config.false_positive_weight * float(fp.sum())
        return {"classification": 0.0, "regression": 0.0, "false_positive": fp_term}

    cls_terms = np.full(n_gt, floor_nll, dtype=np.float64)
    reg_terms = np.zeros(n_gt, dtype=np.float64)
    used = np.zeros(len(detections), dtype=bool)
    if len(detections):
        iou = iou_matrix(gt_boxes, detections.boxes)
        # Greedy: ground truths in descending best-overlap order.
        order = np.argsort(-iou.max(axis=1))
        for g in order:
            candidates = np.flatnonzero((iou[g] >= config.match_iou) & ~used)
            if candidates.size == 0:
                continue
            # Highest-confidence candidate wins the match.
            j = int(candidates[np.argmax(detections.scores[candidates])])
            used[j] = True
            correct = int(detections.labels[j]) == int(gt_labels[g])
            if correct:
                p = float(np.clip(detections.scores[j], config.confidence_floor, 1.0))
            else:
                p = config.wrong_class_confidence
            cls_terms[g] = -np.log(p)
            diff = (detections.boxes[j] - gt_boxes[g]) / config.box_norm
            reg_terms[g] = float(_smooth_l1(diff, config.smooth_l1_beta).mean())

    unmatched = ~used
    fp_scores = detections.scores[unmatched]
    fp_scores = fp_scores[fp_scores > config.false_positive_score]
    fp_term = config.false_positive_weight * float(fp_scores.sum()) / max(n_gt, 1)
    return {
        "classification": float(cls_terms.mean()),
        "regression": config.regression_weight * float(reg_terms.mean()),
        "false_positive": fp_term,
    }


def fusion_loss(
    detections: Detections,
    gt_boxes: np.ndarray,
    gt_labels: np.ndarray,
    config: FusionLossConfig = DEFAULT_CONFIG,
) -> float:
    """Scalar L_f for one image (lower is better; bounded by the floors)."""
    parts = fusion_loss_breakdown(detections, gt_boxes, gt_labels, config)
    return parts["classification"] + parts["regression"] + parts["false_positive"]
