"""Experiment runner: evaluate pipelines over dataset splits.

Produces the quantities the paper's tables and figures report — mAP,
average fusion loss, average energy (J) and latency (ms) — overall and
broken down by driving context.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..core.ecofusion import BranchOutputCache, EcoFusionModel, EcoFusionResult
from ..core.gating.base import Gate
from ..datasets.splits import Subset
from ..perception.detections import Detections
from .loss_metrics import fusion_loss
from .map import MapResult, evaluate_map

__all__ = ["EvalResult", "evaluate_static_config", "evaluate_ecofusion"]


@dataclass
class EvalResult:
    """Aggregate metrics of one pipeline over one split."""

    name: str
    map_result: MapResult
    avg_loss: float
    avg_energy_joules: float
    avg_latency_ms: float
    num_samples: int
    per_context_loss: dict[str, float] = field(default_factory=dict)
    per_context_energy: dict[str, float] = field(default_factory=dict)
    config_histogram: dict[str, int] = field(default_factory=dict)

    @property
    def map_percent(self) -> float:
        return self.map_result.percent


def _aggregate(
    name: str,
    detections: list[Detections],
    split: Subset,
    energies: list[float],
    latencies: list[float],
    config_names: list[str] | None = None,
) -> EvalResult:
    samples = list(split)
    gt_boxes = [s.boxes for s in samples]
    gt_labels = [s.labels for s in samples]
    losses = np.array(
        [fusion_loss(d, b, l) for d, b, l in zip(detections, gt_boxes, gt_labels)]
    )
    contexts = [s.context for s in samples]
    per_ctx_loss: dict[str, float] = {}
    per_ctx_energy: dict[str, float] = {}
    energy_arr = np.asarray(energies, dtype=np.float64)
    for ctx in sorted(set(contexts)):
        mask = np.array([c == ctx for c in contexts])
        per_ctx_loss[ctx] = float(losses[mask].mean())
        per_ctx_energy[ctx] = float(energy_arr[mask].mean())
    return EvalResult(
        name=name,
        map_result=evaluate_map(detections, gt_boxes, gt_labels),
        avg_loss=float(losses.mean()),
        avg_energy_joules=float(energy_arr.mean()),
        avg_latency_ms=float(np.mean(latencies)),
        num_samples=len(samples),
        per_context_loss=per_ctx_loss,
        per_context_energy=per_ctx_energy,
        config_histogram=dict(Counter(config_names)) if config_names else {},
    )


def evaluate_static_config(
    model: EcoFusionModel,
    config_name: str,
    split: Subset,
    cache: BranchOutputCache | None = None,
    batch_size: int = 16,
    display_name: str | None = None,
) -> EvalResult:
    """Evaluate one fixed configuration as a static pipeline.

    This is how the paper's None / Early / Late baseline rows are
    produced; energy and latency come from the offline cost table (the
    static pipeline runs neither the unused stems nor the gate).
    """
    config = model.config_named(config_name)
    cost = model.costs.config_costs[config_name]
    samples = list(split)
    detections: list[Detections] = []
    for start in range(0, len(samples), batch_size):
        chunk = samples[start : start + batch_size]
        detections.extend(model.run_config(config, chunk, cache=cache))
    energies = [cost.energy_joules] * len(samples)
    latencies = [cost.latency_ms] * len(samples)
    return _aggregate(
        display_name or config_name, detections, split, energies, latencies,
        config_names=[config_name] * len(samples),
    )


def evaluate_ecofusion(
    model: EcoFusionModel,
    gate: Gate,
    split: Subset,
    lambda_e: float = 0.01,
    gamma: float = 0.5,
    cache: BranchOutputCache | None = None,
    batch_size: int = 16,
    display_name: str | None = None,
) -> EvalResult:
    """Evaluate adaptive EcoFusion inference with a given gate."""
    samples = list(split)
    results: list[EcoFusionResult] = []
    for start in range(0, len(samples), batch_size):
        chunk = samples[start : start + batch_size]
        results.extend(
            model.infer(chunk, gate, lambda_e=lambda_e, gamma=gamma, cache=cache)
        )
    name = display_name or f"ecofusion[{gate.name}, lambda={lambda_e}]"
    return _aggregate(
        name,
        [r.detections for r in results],
        split,
        [r.energy_joules for r in results],
        [r.latency_ms for r in results],
        config_names=[r.config_name for r in results],
    )
