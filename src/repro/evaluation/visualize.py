"""Terminal visualization of sensor frames and detections.

Pure-text rendering (no plotting dependencies): sensor tensors become
ASCII intensity maps and detections/ground truth are drawn as labelled
box outlines.  Used by the examples for eyeballing the simulator and the
detector — and handy when debugging a context's degradation profile.
"""

from __future__ import annotations

import numpy as np

from ..datasets.contexts import CLASS_NAMES
from ..datasets.radiate import Sample
from ..perception.detections import Detections

__all__ = ["ascii_image", "ascii_boxes", "render_sample", "render_detections"]

# Dark -> bright ramp; chosen for monotone perceived intensity.
_RAMP = " .:-=+*#%@"


def ascii_image(array: np.ndarray, width: int = 64) -> str:
    """Render a (C, H, W) or (H, W) tensor as an ASCII intensity map.

    Multi-channel inputs are averaged; values are min-max scaled over the
    frame; output is subsampled to at most ``width`` columns (rows are
    halved again because terminal cells are ~2:1 tall).
    """
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr.mean(axis=0)
    if arr.ndim != 2:
        raise ValueError(f"expected (C,H,W) or (H,W), got shape {arr.shape}")
    h, w = arr.shape
    step = max(int(np.ceil(w / width)), 1)
    sub = arr[:: 2 * step, ::step]
    lo, hi = float(sub.min()), float(sub.max())
    if hi - lo < 1e-9:
        hi = lo + 1e-9
    levels = ((sub - lo) / (hi - lo) * (len(_RAMP) - 1)).astype(int)
    return "\n".join("".join(_RAMP[v] for v in row) for row in levels)


def ascii_boxes(
    boxes: np.ndarray,
    labels: np.ndarray,
    image_size: int,
    width: int = 64,
    fill: str | None = None,
) -> str:
    """Draw labelled box outlines on an empty canvas.

    Each box is outlined with ``+-|`` and tagged with the class's first
    letter (or ``fill`` if given).  Canvas geometry matches
    :func:`ascii_image` so the two can be eyeballed side by side.
    """
    step = max(int(np.ceil(image_size / width)), 1)
    cols = int(np.ceil(image_size / step))
    rows = int(np.ceil(image_size / (2 * step)))
    canvas = [[" "] * cols for _ in range(rows)]
    boxes = np.asarray(boxes).reshape(-1, 4)
    labels = np.asarray(labels).reshape(-1)
    for box, label in zip(boxes, labels):
        x1 = int(np.clip(box[0] / step, 0, cols - 1))
        x2 = int(np.clip(box[2] / step, 0, cols - 1))
        y1 = int(np.clip(box[1] / (2 * step), 0, rows - 1))
        y2 = int(np.clip(box[3] / (2 * step), 0, rows - 1))
        for x in range(x1, x2 + 1):
            canvas[y1][x] = "-"
            canvas[y2][x] = "-"
        for y in range(y1, y2 + 1):
            canvas[y][x1] = "|"
            canvas[y][x2] = "|"
        for y, x in ((y1, x1), (y1, x2), (y2, x1), (y2, x2)):
            canvas[y][x] = "+"
        tag = fill or (
            CLASS_NAMES[int(label) - 1][0].upper()
            if 1 <= int(label) <= len(CLASS_NAMES)
            else "?"
        )
        ty, tx = min(y1 + 1, rows - 1), min(x1 + 1, cols - 1)
        canvas[ty][tx] = tag
    return "\n".join("".join(row) for row in canvas)


def render_sample(sample: Sample, sensor: str = "camera_right",
                  width: int = 64) -> str:
    """One sensor frame plus its ground-truth boxes, stacked vertically."""
    image = ascii_image(sample.sensors[sensor], width=width)
    size = sample.sensors[sensor].shape[-1]
    boxes = ascii_boxes(sample.boxes, sample.labels, size, width=width)
    header = f"[{sensor} | context={sample.context} | {sample.num_objects} objects]"
    return "\n".join([header, image, "ground truth:", boxes])


def render_detections(
    detections: Detections, image_size: int, width: int = 64,
    min_score: float = 0.3,
) -> str:
    """Detection boxes above ``min_score`` as an ASCII overlay."""
    kept = detections.above_score(min_score)
    header = f"[{len(kept)} detections >= {min_score:.2f}]"
    boxes = ascii_boxes(kept.boxes, kept.labels, image_size, width=width)
    return "\n".join([header, boxes])
