"""Metrics registry: counters, gauges and fixed-bucket histograms.

The serving-layer questions the ROADMAP asks — per-frame latency
p50/p99, throughput under load, cache hit rates, energy per frame —
all reduce to three instrument kinds:

* :class:`Counter` — monotonically increasing totals (frames executed,
  program-LRU hits, fault-masked decisions);
* :class:`Gauge` — last/min/max of a sampled value (battery SoC,
  effective ``lambda_E``, replay-pool bytes);
* :class:`Histogram` — fixed-bucket distributions with p50/p90/p99
  summaries derived from bucket counts, **without** calling
  ``numpy.percentile`` in the hot loop (observe is one ``bisect`` plus
  integer adds).

Instruments live in a :class:`MetricsRegistry` keyed by
``name + labels``; a disabled registry hands out shared no-op
instruments so call sites never branch.  Snapshots are plain JSON
dicts, and — because every field is a sum, a min/max, or a bucket
count — snapshots from independent processes merge associatively
(:func:`merge_snapshots`), which is what lets ``run_sweep`` aggregate
telemetry across ``--jobs`` pool shards without coordination.

Zero dependencies by design (stdlib only): importing this module must
never cost more than the instruments it defines.
"""

from __future__ import annotations

import json
from bisect import bisect_left

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "LATENCY_BUCKETS_MS",
    "ENERGY_BUCKETS_J",
    "WALL_BUCKETS_S",
    "UNIT_BUCKETS",
    "SERVING_LATENCY_BUCKETS_MS",
    "OCCUPANCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "split_metric_key",
    "merge_snapshots",
    "summarize_snapshot",
    "aggregate_histogram",
]

SNAPSHOT_SCHEMA_VERSION = 1

# Default bucket ladders (upper edges, ascending).  Chosen to straddle
# the simulated PX2 frame costs: latency ~20-300 ms, energy ~1-30 J.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 35.0, 50.0, 75.0, 100.0, 150.0,
    200.0, 300.0, 500.0, 1000.0,
)
ENERGY_BUCKETS_J: tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0,
)
# Wall-clock buckets for bench-side timing (seconds, wide dynamic range).
WALL_BUCKETS_S: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0,
)
# For quantities naturally in [0, 1] (SoC, lambda_E schedules).
UNIT_BUCKETS: tuple[float, ...] = tuple(i / 20.0 for i in range(1, 21))
# Served-frame wall latency (ms): unlike the simulated PX2 ladder above,
# this measures *service* time — sub-millisecond per frame at test scale,
# stretching into hundreds of ms of queue wait under load.
SERVING_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0,
)
# Cross-stream batch occupancy (frames coalesced per service batch).
OCCUPANCY_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """Monotonically increasing integer/float total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self):
        return self.value

    def _merge_raw(self, value) -> None:
        self.value += value


class Gauge:
    """Last observed value plus running min/max and sample count."""

    __slots__ = ("last", "min", "max", "count")

    def __init__(self) -> None:
        self.last: float | None = None
        self.min: float | None = None
        self.max: float | None = None
        self.count = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.count += 1

    def to_dict(self) -> dict:
        return {
            "last": self.last, "min": self.min, "max": self.max,
            "count": self.count,
        }

    def _merge_raw(self, raw: dict) -> None:
        # The merged-in snapshot is treated as newer: its last-value wins
        # whenever it observed anything (rightmost-wins is associative).
        if raw["count"]:
            self.last = raw["last"]
        self.min = _opt_min(self.min, raw["min"])
        self.max = _opt_max(self.max, raw["max"])
        self.count += raw["count"]


class Histogram:
    """Fixed upper-edge buckets with exact count/sum/min/max.

    ``edges`` are ascending upper bounds; bucket ``i`` counts values
    ``edges[i-1] < v <= edges[i]`` (edge values land in the bucket they
    bound), and one overflow bucket counts ``v > edges[-1]``.
    Percentiles are interpolated from the bucket counts, clamped by the
    exact observed min/max, so ``p50/p90/p99`` never need the raw
    samples.
    """

    __slots__ = ("edges", "counts", "count", "sum", "min", "max")

    def __init__(self, edges: tuple[float, ...]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be strictly ascending")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile in [0, 1]; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.min if i == 0 else max(self.edges[i - 1], self.min)
            hi = self.max if i == len(self.edges) else min(self.edges[i], self.max)
            if cumulative + n >= target:
                frac = 0.0 if n == 0 else (target - cumulative) / n
                return lo + (hi - lo) * max(frac, 0.0)
            cumulative += n
        return self.max

    def summary(self) -> dict:
        """Compact p50/p90/p99 view (the per-drive trace block shape)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def _merge_raw(self, raw: dict) -> None:
        if tuple(raw["edges"]) != self.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges"
            )
        self.counts = [a + b for a, b in zip(self.counts, raw["counts"])]
        self.count += raw["count"]
        self.sum += raw["sum"]
        self.min = _opt_min(self.min, raw["min"])
        self.max = _opt_max(self.max, raw["max"])

    @classmethod
    def from_dict(cls, raw: dict) -> "Histogram":
        hist = cls(tuple(raw["edges"]))
        hist._merge_raw(raw)
        return hist


def _opt_min(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


# ----------------------------------------------------------------------
# No-op instruments (what a disabled registry hands out)
# ----------------------------------------------------------------------
class _NoopInstrument:
    """Accepts every instrument method and does nothing, cheaply."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP = _NoopInstrument()


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def metric_key(name: str, labels: dict) -> str:
    """Canonical ``name{k=v,...}`` key; labels sorted so order is free."""
    if any(ch in name for ch in "{},="):
        raise ValueError(f"metric name '{name}' contains a reserved character")
    if not labels:
        return name
    for k, v in labels.items():
        if any(ch in str(k) + str(v) for ch in "{},="):
            raise ValueError(
                f"label '{k}={v}' contains a reserved character"
            )
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` (label values come back as strings)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for pair in rest.rstrip("}").split(","):
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Process-local instrument store keyed by ``name + labels``.

    A disabled registry (``enabled=False``) returns shared no-op
    instruments from every accessor, so instrumented code paths never
    need their own on/off branches — though hot loops may still guard
    on :attr:`enabled` to skip building label dicts.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    def _get(self, key: str, kind, factory):
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric '{key}' already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        return self._get(metric_key(name, labels), Counter, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        return self._get(metric_key(name, labels), Gauge, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        edges = tuple(buckets) if buckets is not None else LATENCY_BUCKETS_MS
        hist = self._get(
            metric_key(name, labels), Histogram, lambda: Histogram(edges)
        )
        if buckets is not None and hist.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram '{name}' already registered with different buckets"
            )
        return hist

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable raw state (mergeable, see module docstring)."""
        counters, gauges, histograms = {}, {}, {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            if isinstance(instrument, Counter):
                counters[key] = instrument.to_dict()
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.to_dict()
            else:
                histograms[key] = instrument.to_dict()
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def absorb(self, snapshot: dict) -> None:
        """Merge a snapshot (e.g. from a pool worker) into this registry."""
        if not self.enabled:
            raise RuntimeError("cannot absorb into a disabled registry")
        if snapshot.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot schema {snapshot.get('schema_version')!r} != "
                f"{SNAPSHOT_SCHEMA_VERSION}"
            )
        for key, value in snapshot["counters"].items():
            self._get(key, Counter, Counter)._merge_raw(value)
        for key, raw in snapshot["gauges"].items():
            self._get(key, Gauge, Gauge)._merge_raw(raw)
        for key, raw in snapshot["histograms"].items():
            self._get(
                key, Histogram, lambda r=raw: Histogram(tuple(r["edges"]))
            )._merge_raw(raw)

    def __len__(self) -> int:
        return len(self._instruments)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------
def merge_snapshots(*snapshots: dict) -> dict:
    """Associative merge: counters add, gauges/histograms combine.

    ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` holds for every
    field (sums, mins, maxes, bucket counts; gauge ``last`` is
    rightmost-wins), which is what makes shard-level aggregation safe
    regardless of completion order grouping.
    """
    merged = MetricsRegistry(enabled=True)
    for snap in snapshots:
        merged.absorb(snap)
    return merged.snapshot()


def summarize_snapshot(snapshot: dict) -> dict:
    """Snapshot with each histogram replaced by its p50/p90/p99 summary."""
    return {
        "schema_version": snapshot["schema_version"],
        "counters": dict(snapshot["counters"]),
        "gauges": dict(snapshot["gauges"]),
        "histograms": {
            key: Histogram.from_dict(raw).summary()
            for key, raw in snapshot["histograms"].items()
        },
    }


def aggregate_histogram(snapshot: dict, name: str) -> Histogram | None:
    """Merge every labeled variant of histogram ``name`` in a snapshot.

    E.g. ``drive.frame.latency_ms`` is recorded per policy; the
    fleet-level latency distribution is the sum over all label sets.
    Returns None when no variant exists.
    """
    merged: Histogram | None = None
    for key, raw in snapshot["histograms"].items():
        if split_metric_key(key)[0] != name:
            continue
        if merged is None:
            merged = Histogram(tuple(raw["edges"]))
        merged._merge_raw(raw)
    return merged
