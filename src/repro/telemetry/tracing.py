"""Nested spans over the monotonic clock, with JSONL export.

A :class:`Tracer` records a tree of :class:`Span`s —
``drive > frame > gate / branch:camera_lidar`` — each carrying
wall-free monotonic timings plus arbitrary attributes (configuration
chosen, energy J, SoC, cache hit/miss, window size).  Spans are context
managers and **exception-safe**: a span that unwinds through an error
is still closed and timed, tagged with the exception type, and the
stack is restored, so a crashing sweep worker leaves a readable trace
instead of a corrupt one.

The default tracer is a :class:`NullTracer` whose :meth:`span` returns
one shared no-op context manager — the disabled hot path allocates
nothing and is bounded by the overhead-guard test in
``tests/telemetry``.  Enabled tracers export to:

* an in-memory tree (:attr:`Tracer.roots`, rendered by
  :meth:`Tracer.format_tree`), and
* JSONL trace files (:meth:`Tracer.write_jsonl`): a header line then
  one ``{"kind": "span", ...}`` record per finished span, the format
  ``scripts/trace_report.py`` consumes.

Zero dependencies (stdlib only).
"""

from __future__ import annotations

import json
import os
import time
from typing import IO

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "NullTracer",
    "NOOP_SPAN",
    "read_jsonl",
]

TRACE_SCHEMA = "repro.telemetry.trace/1"


class Span:
    """One timed region; also its own context manager."""

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "children",
        "start_s", "end_s", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_s = 0.0
        self.end_s: float | None = None

    # ------------------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1e3

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attrs.update(attrs)
        return self

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            # Tag, close, and *propagate*: tracing must never swallow.
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": (self.start_s - self._tracer.epoch_s) * 1e3,
            "dur_ms": self.duration_ms,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()
    attrs: dict = {}
    name = ""
    duration_ms = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class NullTracer:
    """Disabled tracer: every span() returns the one shared no-op span."""

    enabled = False
    roots: tuple = ()
    finished: tuple = ()
    dropped = 0

    def span(self, name: str, **attrs) -> _NoopSpan:
        return NOOP_SPAN

    def format_tree(self, *args, **kwargs) -> str:
        return "(tracing disabled)"

    def write_jsonl(self, path) -> None:
        raise RuntimeError("cannot export a NullTracer; tracing is disabled")


class Tracer:
    """Span recorder with an in-memory tree and JSONL export.

    ``max_spans`` bounds memory on very long runs: past the cap new
    spans are still timed-and-discarded no-ops and :attr:`dropped`
    counts them, so a runaway drive degrades gracefully instead of
    accumulating gigabytes of trace.
    """

    enabled = True

    def __init__(self, max_spans: int = 250_000) -> None:
        self.max_spans = int(max_spans)
        self.epoch_s = time.perf_counter()
        self.epoch_unix = time.time()
        self.roots: list[Span] = []
        self.finished: list[Span] = []  # completion order (JSONL order)
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span | _NoopSpan:
        if len(self.finished) + len(self._stack) >= self.max_spans:
            self.dropped += 1
            return NOOP_SPAN
        span = Span(
            self, name, self._next_id,
            self._stack[-1].span_id if self._stack else None, attrs,
        )
        self._next_id += 1
        return span

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Exception unwinding may skip frames; pop to (and including)
        # this span so the stack never wedges on a crashed child.
        while self._stack:
            top = self._stack.pop()
            self.finished.append(top)
            if top is span:
                break

    # ------------------------------------------------------------------
    def span_durations(self) -> dict[str, list[float]]:
        """Finished-span durations (ms) grouped by span name."""
        grouped: dict[str, list[float]] = {}
        for span in self.finished:
            grouped.setdefault(span.name, []).append(span.duration_ms)
        return grouped

    def format_tree(self, max_children: int = 8, max_depth: int = 8) -> str:
        """Readable tree; sibling runs beyond ``max_children`` collapse.

        Hundreds of ``frame`` spans under one drive render as the first
        few plus one ``... (+N more, total X ms)`` line per name.
        """
        lines: list[str] = []

        def render(spans: list[Span], depth: int) -> None:
            if depth > max_depth:
                return
            indent = "  " * depth
            by_name: dict[str, int] = {}
            shown: dict[str, int] = {}
            for span in spans:
                by_name[span.name] = by_name.get(span.name, 0) + 1
            suppressed: dict[str, float] = {}
            for span in spans:
                n = shown.get(span.name, 0)
                if n >= max_children:
                    suppressed[span.name] = (
                        suppressed.get(span.name, 0.0) + span.duration_ms
                    )
                    continue
                shown[span.name] = n + 1
                attrs = ", ".join(
                    f"{k}={v}" for k, v in span.attrs.items()
                )
                lines.append(
                    f"{indent}{span.name}  {span.duration_ms:.3f} ms"
                    + (f"  [{attrs}]" if attrs else "")
                )
                render(span.children, depth + 1)
            for name, total in suppressed.items():
                more = by_name[name] - max_children
                lines.append(
                    f"{indent}... {name} (+{more} more, {total:.3f} ms)"
                )

        render(self.roots, 0)
        if self.dropped:
            lines.append(f"... ({self.dropped} spans dropped at cap)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def write_jsonl(self, path) -> None:
        """Write header + one line per finished span (overwrites)."""
        with open(path, "w", encoding="utf-8") as handle:
            self.dump_jsonl(handle)

    def dump_jsonl(self, handle: IO[str]) -> None:
        header = {
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "epoch_unix": self.epoch_unix,
            "pid": os.getpid(),
            "spans": len(self.finished),
            "dropped": self.dropped,
        }
        handle.write(json.dumps(header) + "\n")
        for span in self.finished:
            handle.write(json.dumps(span.to_dict()) + "\n")


def read_jsonl(path) -> tuple[dict, list[dict]]:
    """Parse one trace file; returns ``(header, span_records)``.

    Raises ``ValueError`` on a missing/foreign header so tooling fails
    loudly on files that merely look like traces.
    """
    header: dict | None = None
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "header":
                if record.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported trace schema "
                        f"{record.get('schema')!r}"
                    )
                header = record
            elif record.get("kind") == "span":
                spans.append(record)
    if header is None:
        raise ValueError(f"{path}: no trace header found")
    return header, spans
