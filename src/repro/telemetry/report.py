"""Telemetry summaries: the ``telemetry_summary.json`` contract.

Benches (and later the drive service) end a run by collapsing their
metrics snapshot into one schema-versioned JSON document: fleet-level
frame latency/energy percentiles (aggregated across every
policy-labeled histogram), the engine program-LRU hit rate summed over
all pool shards, branch-cache effectiveness, and the per-policy
configuration-decision distribution.  ``validate_summary`` is the CI
gate: a summary that drifts from the schema fails the smoke job
instead of silently feeding tooling garbage.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import (
    aggregate_histogram,
    split_metric_key,
    summarize_snapshot,
)

__all__ = [
    "SUMMARY_SCHEMA",
    "build_summary",
    "write_summary",
    "validate_summary",
    "load_summary",
]

SUMMARY_SCHEMA = "repro.telemetry.summary/1"

# Metric names the runner/sweep emit that the summary lifts to headline
# blocks (everything else stays available under ``metrics``).
FRAME_LATENCY_METRIC = "drive.frame.latency_ms"
FRAME_ENERGY_METRIC = "drive.frame.energy_j"
DECISIONS_METRIC = "policy.decisions"


def _counter_total(snapshot: dict, name: str) -> float:
    return sum(
        value
        for key, value in snapshot["counters"].items()
        if split_metric_key(key)[0] == name
    )


def _headline(snapshot: dict, metric: str) -> dict | None:
    hist = aggregate_histogram(snapshot, metric)
    if hist is None or hist.count == 0:
        return None
    return hist.summary()


def _decisions(snapshot: dict) -> dict[str, dict[str, int]]:
    """policy -> config -> decision count, from the labeled counters."""
    out: dict[str, dict[str, int]] = {}
    for key, value in snapshot["counters"].items():
        name, labels = split_metric_key(key)
        if name != DECISIONS_METRIC:
            continue
        policy = labels.get("policy", "?")
        config = labels.get("config", "?")
        out.setdefault(policy, {})[config] = int(value)
    return {policy: dict(sorted(cfgs.items())) for policy, cfgs in sorted(out.items())}


def _engine_block(snapshot: dict) -> dict:
    hits = _counter_total(snapshot, "engine.program_cache.hits")
    misses = _counter_total(snapshot, "engine.program_cache.misses")
    lookups = hits + misses
    return {
        "program_cache_hits": int(hits),
        "program_cache_misses": int(misses),
        "program_cache_hit_rate": (hits / lookups) if lookups else None,
        "compiles": int(_counter_total(snapshot, "engine.compiles")),
        "evictions": int(_counter_total(snapshot, "engine.program_cache.evictions")),
    }


def _branch_cache_block(snapshot: dict) -> dict:
    block = {}
    for kind in ("branch", "fused", "loss", "stem"):
        hits = _counter_total(snapshot, f"branch_cache.{kind}.hits")
        misses = _counter_total(snapshot, f"branch_cache.{kind}.misses")
        lookups = hits + misses
        block[kind] = {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": (hits / lookups) if lookups else None,
        }
    return block


def build_summary(snapshot: dict, meta: dict | None = None,
                  kernel_profile: dict | None = None) -> dict:
    """Collapse a metrics snapshot into the summary document."""
    summary = {
        "schema": SUMMARY_SCHEMA,
        "meta": dict(meta or {}),
        "frames": int(_counter_total(snapshot, "drive.frames")),
        "frame_latency_ms": _headline(snapshot, FRAME_LATENCY_METRIC),
        "frame_energy_j": _headline(snapshot, FRAME_ENERGY_METRIC),
        "decisions": _decisions(snapshot),
        "engine": _engine_block(snapshot),
        "branch_cache": _branch_cache_block(snapshot),
        "metrics": summarize_snapshot(snapshot),
    }
    if kernel_profile is not None:
        summary["kernel_profile"] = kernel_profile
    return summary


def write_summary(path, snapshot: dict, meta: dict | None = None,
                  kernel_profile: dict | None = None) -> dict:
    """Build, validate and write ``telemetry_summary.json``; returns it."""
    summary = build_summary(snapshot, meta=meta, kernel_profile=kernel_profile)
    validate_summary(summary)
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True))
    return summary


def load_summary(path) -> dict:
    summary = json.loads(Path(path).read_text())
    validate_summary(summary)
    return summary


def validate_summary(summary: dict) -> None:
    """Raise ``ValueError`` unless ``summary`` matches the schema."""

    def fail(msg: str) -> None:
        raise ValueError(f"invalid telemetry summary: {msg}")

    if not isinstance(summary, dict):
        fail("not a JSON object")
    if summary.get("schema") != SUMMARY_SCHEMA:
        fail(f"schema {summary.get('schema')!r} != {SUMMARY_SCHEMA!r}")
    for field, kind in (
        ("meta", dict), ("frames", int), ("decisions", dict),
        ("engine", dict), ("branch_cache", dict), ("metrics", dict),
    ):
        if not isinstance(summary.get(field), kind):
            fail(f"field '{field}' missing or not a {kind.__name__}")
    for field in ("frame_latency_ms", "frame_energy_j"):
        block = summary.get(field)
        if block is None:
            continue
        if not isinstance(block, dict):
            fail(f"field '{field}' must be null or an object")
        for stat in ("count", "p50", "p90", "p99", "mean", "min", "max"):
            if stat not in block:
                fail(f"field '{field}' lacks '{stat}'")
    engine = summary["engine"]
    for stat in ("program_cache_hits", "program_cache_misses",
                 "program_cache_hit_rate", "compiles", "evictions"):
        if stat not in engine:
            fail(f"engine block lacks '{stat}'")
    metrics = summary["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics block lacks '{section}'")
    for policy, configs in summary["decisions"].items():
        if not isinstance(configs, dict):
            fail(f"decisions for policy '{policy}' not an object")
        for config, count in configs.items():
            if not isinstance(count, int):
                fail(f"decision count {policy}/{config} not an int")
