"""Opt-in per-kernel timing for compiled-program replay.

The compiled engine (``repro.nn.engine``) replays flat lists of numpy
kernel steps; this module answers "where do the replay milliseconds
go?" without touching the default hot path.  Inside a
:func:`kernel_profiling` context every :class:`~repro.nn.engine.Program`
step is wrapped in two monotonic-clock reads and accumulated into a
:class:`KernelProfiler` keyed by ``(program label, op)``; outside the
context the replay loop is the same unconditional dispatch it always
was (one ``is None`` check per replay, covered by the overhead guard).

Typical use::

    with kernel_profiling() as prof:
        runner.run(spec, policy, compiled=True)
    print(prof.table(k=10))          # top-k ops by cumulative time
    top = prof.top(10, by="op")      # [(label, seconds, calls), ...]
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["KernelProfiler", "kernel_profiling"]


class KernelProfiler:
    """Cumulative per-kernel replay timings.

    Records are keyed by ``(program_label, op)``; :meth:`top` aggregates
    either per op (default — "how expensive is conv2d overall?") or per
    site (``by="program"`` / ``by="step"`` for the raw key).
    """

    def __init__(self) -> None:
        # (program_label, op) -> [cumulative_seconds, calls]
        self.records: dict[tuple[str, str], list] = {}

    def record(self, program: str, op: str, seconds: float) -> None:
        cell = self.records.get((program, op))
        if cell is None:
            self.records[(program, op)] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(cell[0] for cell in self.records.values())

    @property
    def total_calls(self) -> int:
        return sum(cell[1] for cell in self.records.values())

    def top(self, k: int = 10, by: str = "op") -> list[tuple[str, float, int]]:
        """Top-``k`` kernels by cumulative seconds: (label, seconds, calls)."""
        grouped: dict[str, list] = {}
        for (program, op), (seconds, calls) in self.records.items():
            if by == "op":
                label = op
            elif by == "program":
                label = program
            elif by == "step":
                label = f"{program}:{op}"
            else:
                raise ValueError("by must be 'op', 'program' or 'step'")
            cell = grouped.setdefault(label, [0.0, 0])
            cell[0] += seconds
            cell[1] += calls
        ranked = sorted(grouped.items(), key=lambda item: -item[1][0])
        return [(label, cell[0], cell[1]) for label, cell in ranked[:k]]

    def table(self, k: int = 10, by: str = "op") -> str:
        """Human-readable top-k report."""
        total = self.total_seconds
        if not self.records:
            return "(no kernel replays recorded)"
        lines = [f"{'kernel':24s} {'cum ms':>10s} {'calls':>8s} {'share':>7s}"]
        for label, seconds, calls in self.top(k, by=by):
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(
                f"{label:24s} {seconds * 1e3:10.2f} {calls:8d} {share:6.1f}%"
            )
        lines.append(
            f"{'total':24s} {total * 1e3:10.2f} {self.total_calls:8d}"
        )
        return "\n".join(lines)

    def to_dict(self, k: int = 20) -> dict:
        """JSON-ready top-k block (embedded in telemetry summaries)."""
        return {
            "total_seconds": self.total_seconds,
            "total_calls": self.total_calls,
            "top_ops": [
                {"op": label, "seconds": seconds, "calls": calls}
                for label, seconds, calls in self.top(k, by="op")
            ],
        }


@contextmanager
def kernel_profiling(profiler: KernelProfiler | None = None):
    """Install a kernel profiler on the engine for the block's duration.

    Nests by stacking: the previous profiler (usually None) is restored
    on exit, even when the block raises.
    """
    from ..nn import engine

    prof = profiler if profiler is not None else KernelProfiler()
    previous = engine.set_kernel_profiler(prof)
    try:
        yield prof
    finally:
        engine.set_kernel_profiler(previous)
