"""``repro.telemetry`` — frame-level tracing, metrics and profiling.

The observability substrate under the drive stack.  Three layers, all
zero-dependency and **disabled by default** — the no-op instruments are
the process-wide defaults, the hot path is unperturbed, and compiled
drives stay bit-identical whether or not telemetry is on (telemetry
only *reads* values; it never participates in arithmetic):

* :mod:`~repro.telemetry.tracing` — nested monotonic-clock spans
  (``drive > frame > gate / branch:<config>``) with per-span
  attributes, an in-memory tree and JSONL export;
* :mod:`~repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms keyed by name+labels, with p50/p90/p99 summaries computed
  from bucket counts and associatively mergeable snapshots (how
  ``run_sweep`` aggregates across ``--jobs`` pool shards);
* :mod:`~repro.telemetry.profiling` — opt-in per-kernel replay timing
  for ``repro.nn.engine`` programs (top-k kernels by cumulative time).

The :class:`Telemetry` facade bundles one tracer with one registry.
Sites resolve telemetry in two steps: an explicitly injected instance
(``ClosedLoopRunner(telemetry=...)``) wins; otherwise the process-local
default (:func:`get_default`) applies, which is ``NULL_TELEMETRY``
unless :func:`set_default` installed something.

Enable everything for one drive::

    from repro.telemetry import Telemetry

    tel = Telemetry.create()                      # tracing + metrics on
    runner = ClosedLoopRunner(model, telemetry=tel)
    trace = runner.run(spec, policy)
    print(tel.tracer.format_tree())
    tel.tracer.write_jsonl("trace_drive.jsonl")
    snapshot = tel.metrics.snapshot()             # JSON/mergeable
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    ENERGY_BUCKETS_J,
    LATENCY_BUCKETS_MS,
    OCCUPANCY_BUCKETS,
    SERVING_LATENCY_BUCKETS_MS,
    UNIT_BUCKETS,
    WALL_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_histogram,
    merge_snapshots,
    metric_key,
    split_metric_key,
    summarize_snapshot,
)
from .profiling import KernelProfiler, kernel_profiling
from .report import (
    SUMMARY_SCHEMA,
    build_summary,
    load_summary,
    validate_summary,
    write_summary,
)
from .tracing import NOOP_SPAN, NullTracer, Span, Tracer, read_jsonl

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "get_default",
    "set_default",
    # tracing
    "Tracer",
    "NullTracer",
    "Span",
    "NOOP_SPAN",
    "read_jsonl",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_key",
    "split_metric_key",
    "merge_snapshots",
    "summarize_snapshot",
    "aggregate_histogram",
    "LATENCY_BUCKETS_MS",
    "ENERGY_BUCKETS_J",
    "WALL_BUCKETS_S",
    "UNIT_BUCKETS",
    "SERVING_LATENCY_BUCKETS_MS",
    "OCCUPANCY_BUCKETS",
    # profiling
    "KernelProfiler",
    "kernel_profiling",
    # report
    "SUMMARY_SCHEMA",
    "build_summary",
    "write_summary",
    "validate_summary",
    "load_summary",
]


@dataclass
class Telemetry:
    """One tracer + one metrics registry, handed around as a unit."""

    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=False)
    )

    @property
    def active(self) -> bool:
        """True when either tracing or metrics would record anything."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def create(cls, tracing: bool = True, metrics: bool = True,
               max_spans: int = 250_000) -> "Telemetry":
        """An enabled instance (either layer can be opted out)."""
        return cls(
            tracer=Tracer(max_spans=max_spans) if tracing else NullTracer(),
            metrics=MetricsRegistry(enabled=metrics),
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fully inert instance (same behavior as the default)."""
        return cls()


# The process-local default: inert.  ``set_default`` swaps it (e.g. a
# serving process enabling metrics for every drive it hosts) and
# returns the previous value so scopes can restore it.
NULL_TELEMETRY = Telemetry()
_DEFAULT = NULL_TELEMETRY


def get_default() -> Telemetry:
    """The process-local default telemetry (inert unless installed)."""
    return _DEFAULT


def set_default(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as the process default; returns the old one.

    ``None`` restores the inert default.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous
