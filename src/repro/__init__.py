"""EcoFusion reproduction: energy-aware adaptive sensor fusion (DAC 2022).

Reproduces Malawade, Mortlock & Al Faruque, "EcoFusion: Energy-Aware
Adaptive Sensor Fusion for Efficient Autonomous Vehicle Perception"
(DAC 2022, arXiv:2202.11330) — model, substrates and every experiment.

Quick tour of the public API::

    from repro import get_or_build_system, evaluate_ecofusion

    system = get_or_build_system()           # trains (or loads) everything
    result = evaluate_ecofusion(
        system.model, system.gates["attention"], system.test_split,
        lambda_e=0.01, gamma=0.5,
    )
    print(result.map_percent, result.avg_energy_joules)

Subpackages: ``repro.nn`` (autograd substrate), ``repro.datasets``
(RADIATE-like simulator), ``repro.perception`` (Faster R-CNN style
detector), ``repro.fusion`` (early/late/WBF), ``repro.hardware`` (Drive
PX2 energy model), ``repro.core`` (EcoFusion), ``repro.policies``
(perception controllers + registry), ``repro.baselines``,
``repro.evaluation``, ``repro.simulation``.
"""

from . import (
    baselines,
    core,
    datasets,
    evaluation,
    fusion,
    hardware,
    nn,
    perception,
    policies,
    simulation,
)
from .core import (
    AttentionGate,
    BranchOutputCache,
    DeepGate,
    EcoFusionModel,
    EcoFusionResult,
    KnowledgeGate,
    LossBasedGate,
    ModelConfiguration,
    build_config_library,
    candidate_set,
    joint_loss,
    select_configuration,
)
from .datasets import RadiateSim, Sample, Subset, stratified_split
from .evaluation import (
    EvalResult,
    SystemSpec,
    TrainedSystem,
    evaluate_ecofusion,
    evaluate_map,
    evaluate_static_config,
    fusion_loss,
    get_or_build_system,
)
from .policies import (
    EcoFusionPolicy,
    PerceptionPolicy,
    SoCAwarePolicy,
    StaticPolicy,
    build_policy,
    policy_names,
)
from .simulation import (
    ClosedLoopRunner,
    DriveSource,
    DriveTrace,
    ScenarioSpec,
    SegmentSpec,
    SensorFault,
    get_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "datasets",
    "perception",
    "fusion",
    "hardware",
    "core",
    "baselines",
    "evaluation",
    "simulation",
    "AttentionGate",
    "BranchOutputCache",
    "DeepGate",
    "EcoFusionModel",
    "EcoFusionResult",
    "KnowledgeGate",
    "LossBasedGate",
    "ModelConfiguration",
    "build_config_library",
    "candidate_set",
    "joint_loss",
    "select_configuration",
    "RadiateSim",
    "Sample",
    "Subset",
    "stratified_split",
    "EvalResult",
    "SystemSpec",
    "TrainedSystem",
    "evaluate_ecofusion",
    "evaluate_map",
    "evaluate_static_config",
    "fusion_loss",
    "get_or_build_system",
    "policies",
    "PerceptionPolicy",
    "EcoFusionPolicy",
    "StaticPolicy",
    "SoCAwarePolicy",
    "build_policy",
    "policy_names",
    "ClosedLoopRunner",
    "DriveSource",
    "DriveTrace",
    "ScenarioSpec",
    "SegmentSpec",
    "SensorFault",
    "get_scenario",
    "__version__",
]
