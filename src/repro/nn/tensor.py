"""Reverse-mode automatic differentiation on numpy arrays.

This module is the heart of the ``repro.nn`` substrate: a small but complete
autograd engine in the style of PyTorch's eager mode.  A :class:`Tensor`
wraps a ``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients into every tensor created with
``requires_grad=True``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``.
* Broadcasting follows numpy semantics; :func:`unbroadcast` folds a
  broadcast gradient back onto the original operand shape.
* The graph is built from closures (micrograd style) rather than Function
  subclasses: every op stores a ``_backward`` callback plus its parents.
* dtype is preserved: float32 everywhere by default for speed, float64 in
  the numerical gradient checks (see ``repro.nn.gradcheck``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "unbroadcast",
    "no_grad",
    "is_grad_enabled",
    "batch_invariant_enabled",
]

_GRAD_ENABLED = True

# Trace hook installed by ``repro.nn.engine.recording`` while a forward
# is being captured for compilation; ``None`` in normal eager execution.
# Instrumented ops call it as ``_EMIT(op, out, ins, **attrs)`` right
# after computing their result, so the engine can lower the executed op
# sequence into a replayable kernel program.  ``_TRACK`` is the sibling
# hook fed every ``Tensor._make`` output array id, letting the engine
# tell "computed during the trace by an un-instrumented op" (must fail
# loudly) apart from a genuine pre-existing constant.  Kept here (not
# in ``engine``) so the per-op cost when tracing is off is one global
# read.
_EMIT = None
_TRACK = None


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED


# ----------------------------------------------------------------------
# Batch-invariant mode (toggled by repro.nn.functional.batch_invariant).
#
# BLAS GEMM kernels choose blocking (and therefore rounding) from the
# full matrix shapes, so a stacked matmul over N samples is not
# guaranteed to reproduce each sample's batch-of-one result.  The conv
# path handles this inside ``functional.conv2d``; the flag lives here so
# ``Tensor.__matmul__`` can apply the same treatment to *stacked* (3-D)
# matmuls — the attention gate's token projections and score/value
# products — letting the windowed runner batch attention layers too.
_BATCH_INVARIANT = False


def batch_invariant_enabled() -> bool:
    """True while a ``repro.nn.batch_invariant`` context is active."""
    return _BATCH_INVARIANT


def _set_batch_invariant(value: bool) -> bool:
    """Set the flag; returns the previous value (for context restore)."""
    global _BATCH_INVARIANT
    previous = _BATCH_INVARIANT
    _BATCH_INVARIANT = value
    return previous


# Stacked-matmul row-stability verdicts per operand signature: one
# bit-level comparison on real data per signature decides whether the
# full-batch product reproduces per-sample execution (see
# ``functional._invariant_matmul`` for the conv-side equivalent).  The
# key includes the *strides*, not just the shapes: BLAS picks kernels by
# memory layout too, and the attention path mixes contiguous outputs
# with transposed views of identical shape (``tokens @ w_v.T`` vs
# ``attended @ w_o.T``), which must not share a verdict.
_STABLE_STACKED_MATMUL: dict[tuple, bool] = {}


def _invariant_stacked_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Stacked matmul whose per-sample slices match batch-of-one runs.

    The reference is one product per leading-axis sample, each over a
    batch-of-one slice — exactly the operands the sequential path feeds
    BLAS.  Per operand signature (shape + layout + dtype), the first
    call also runs the full-batch product and compares bits: when the
    kernel is row-stable for that signature (common), later calls take
    the fast full-batch path.  ``out`` optionally receives the result
    (used by compiled-program replay to reuse a persistent buffer).
    """
    key = (
        a.shape, a.strides, a.dtype.str,
        b.shape, b.strides, b.dtype.str,
    )
    verdict = _STABLE_STACKED_MATMUL.get(key)
    if verdict:
        return a @ b if out is None else np.matmul(a, b, out=out)
    parts = [
        a[i : i + 1] @ (b if b.ndim == 2 else b[i : i + 1])
        for i in range(a.shape[0])
    ]
    result = np.concatenate(parts, axis=0, out=out)
    if verdict is None:
        _STABLE_STACKED_MATMUL[key] = bool(np.array_equal(a @ b, result))
    return result


def _static_index(index) -> bool:
    """True when a ``__getitem__`` index holds no runtime data (ints,
    slices, Ellipsis, None) and may be baked into a compiled program."""
    if isinstance(index, tuple):
        return all(_static_index(i) for i in index)
    return index is None or index is Ellipsis or isinstance(
        index, (int, np.integer, slice)
    )


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast axes so it matches ``shape``.

    numpy broadcasting may (a) prepend axes and (b) stretch length-1 axes.
    The adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse stretched axes.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: "Tensor | np.ndarray | float | int | Sequence", dtype=None) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when possible)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``numpy.ndarray``; python scalars
        become 0-d float32 arrays.
    requires_grad:
        When True, ``backward()`` accumulates a gradient into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):  # defensive: unwrap nested tensors
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind not in "fc":
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = _backward
        self._parents = _parents if is_grad_enabled() else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction / backward pass
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node whose grad flows to ``parents`` via ``backward``."""
        requires = is_grad_enabled() and any(
            p.requires_grad for p in parents if isinstance(p, Tensor)
        )
        out = Tensor(data, requires_grad=requires)
        if _TRACK is not None:
            # track the *constructed* array: scalar-producing reductions
            # hand __init__ a numpy scalar that gets rewrapped.
            _TRACK(id(out.data))
        if requires:
            out._parents = tuple(p for p in parents if isinstance(p, Tensor))
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first touch)."""
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ones (only valid for scalar output,
            mirroring PyTorch's convention).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (recursion-free for deep nets).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                node._accumulate_into(grads, node_grad)

    def _accumulate_into(self, grads: dict[int, np.ndarray], node_grad: np.ndarray) -> None:
        """Invoke the stored backward closure, routing grads to parents."""
        # The closure signature is backward(grad) -> sequence of parent grads,
        # ordered to match self._parents.
        parent_grads = self._backward(node_grad)
        if parent_grads is None:
            return
        if not isinstance(parent_grads, (tuple, list)):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = unbroadcast(np.asarray(pgrad, dtype=parent.data.dtype), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data
        if _EMIT is not None:
            _EMIT("add", data, (self.data, other.data))
        return Tensor._make(data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data
        if _EMIT is not None:
            _EMIT("neg", data, (self.data,))
        return Tensor._make(data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data - other.data
        if _EMIT is not None:
            _EMIT("sub", data, (self.data, other.data))
        return Tensor._make(data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        data = a * b
        if _EMIT is not None:
            _EMIT("mul", data, (a, b))
        return Tensor._make(data, (self, other), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        data = a / b
        if _EMIT is not None:
            _EMIT("div", data, (a, b))
        return Tensor._make(data, (self, other), lambda g: (g / b, -g * a / (b * b)))

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self.data
        data = a**exponent
        return Tensor._make(data, (self,), lambda g: (g * exponent * a ** (exponent - 1),))

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        invariant = (
            _BATCH_INVARIANT
            and a.ndim == 3
            and a.shape[0] > 1
            and (b.ndim == 2 or (b.ndim == 3 and b.shape[0] == a.shape[0]))
        )
        if invariant:
            data = _invariant_stacked_matmul(a, b)
        else:
            data = a @ b
        if _EMIT is not None:
            _EMIT("matmul", data, (a, b), invariant=invariant)

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:  # dot product
                return g * b, g * a
            if a.ndim == 1:  # (k,) @ (..., k, n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                gb = a[:, None] * g[..., None, :]
                return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)
            if b.ndim == 1:  # (..., m, k) @ (k,)
                ga = g[..., :, None] * b
                gb = (a * g[..., :, None]).sum(axis=tuple(range(a.ndim - 1)))
                return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if _EMIT is not None:
            _EMIT("exp", data, (self.data,))
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        a = self.data
        return Tensor._make(np.log(a), (self,), lambda g: (g / a,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if _EMIT is not None:
            _EMIT("tanh", data, (self.data,))
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        if _EMIT is not None:
            _EMIT("sigmoid", data, (self.data,))
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        if not is_grad_enabled():
            # Inference path: no backward mask needed, and np.maximum
            # writes the result in one pass.  Unlike the masked training
            # path (which zeroes NaN), this propagates NaN — a NaN
            # activation at inference indicates broken weights and
            # should surface, not be silently squashed.
            data = np.maximum(self.data, 0)
            if _EMIT is not None:
                _EMIT("relu", data, (self.data,))
            return Tensor(data)
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)
        if data.dtype != self.data.dtype:  # avoid a same-dtype copy
            data = data.astype(self.data.dtype)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    def leaky_relu(self, slope: float = 0.1) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, slope * self.data).astype(self.data.dtype)
        return Tensor._make(data, (self,), lambda g: (np.where(mask, g, slope * g),))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).astype(self.data.dtype),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axes)
            return (np.broadcast_to(g, shape).astype(self.data.dtype),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                expanded = data
                gexp = g
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                expanded = data if keepdims else np.expand_dims(data, axes)
                gexp = g if keepdims else np.expand_dims(g, axes)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split ties evenly so gradcheck passes on plateaus.
            if axis is None:
                mask /= mask.sum()
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                mask /= mask.sum(axis=axes, keepdims=True)
            return (np.broadcast_to(gexp, shape) * mask,)

        return Tensor._make(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        if _EMIT is not None:
            _EMIT("reshape", data, (self.data,))
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def flatten(self, start_axis: int = 1) -> "Tensor":
        lead = self.data.shape[:start_axis]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(int(i) for i in np.argsort(axes))
        data = self.data.transpose(axes)
        if _EMIT is not None:
            _EMIT("transpose", data, (self.data,), axes=axes)
        return Tensor._make(data, (self,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        if _EMIT is not None and _static_index(index):
            # Array/list indices are data: freezing them into a compiled
            # program would silently replay the traced input's selection
            # forever.  Not emitting makes such a trace fail loudly via
            # the engine's unknown-provenance check instead.
            _EMIT("getitem", data, (self.data,), index=index)
        shape = self.data.shape
        dtype = self.data.dtype

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int | tuple[int, int]) -> "Tensor":
        """Zero-pad the trailing two (spatial) axes of an NCHW tensor."""
        ph, pw = (padding, padding) if isinstance(padding, int) else padding
        if ph == 0 and pw == 0:
            return self
        pads = [(0, 0)] * (self.data.ndim - 2) + [(ph, ph), (pw, pw)]
        data = np.pad(self.data, pads)
        if _EMIT is not None:
            _EMIT("pad2d", data, (self.data,), padding=(ph, pw))
        slices = tuple(
            [slice(None)] * (self.data.ndim - 2)
            + [slice(ph, data.shape[-2] - ph), slice(pw, data.shape[-1] - pw)]
        )
        return Tensor._make(data, (self,), lambda g: (g[slices],))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        if _EMIT is not None:
            _EMIT("concat", data, tuple(t.data for t in tensors), axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray):
            grads = []
            for i in range(len(sizes)):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
                grads.append(g[tuple(sl)])
            return tuple(grads)

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray):
            return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

        return Tensor._make(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # Softmax family (stable, composite-free backward)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        probs = e / e.sum(axis=axis, keepdims=True)
        if _EMIT is not None:
            _EMIT("softmax", probs, (self.data,), axis=axis)

        def backward(g: np.ndarray):
            dot = (g * probs).sum(axis=axis, keepdims=True)
            return (probs * (g - dot),)

        return Tensor._make(probs, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        probs = np.exp(out)

        def backward(g: np.ndarray):
            return (g - probs * g.sum(axis=axis, keepdims=True),)

        return Tensor._make(out, (self,), backward)
