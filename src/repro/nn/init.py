"""Parameter initialization schemes.

Kaiming (He) initialization for ReLU networks and Xavier (Glorot) for
linear/attention layers, matching the references used by the paper's
ResNet-18 backbone [10].
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in / fan-out for dense (out,in) or conv (out,in,kh,kw)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    raise ValueError(f"unsupported parameter shape {shape}")


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal init: std = gain / sqrt(fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform init: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
