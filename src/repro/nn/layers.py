"""Module system and standard layers.

:class:`Module` provides parameter registration, train/eval switching and
``state_dict`` round-tripping; concrete layers mirror their PyTorch
namesakes closely enough that the detector code reads like the original
EcoFusion implementation would.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Submodules and parameters assigned as attributes are auto-registered,
    so ``parameters()`` / ``state_dict()`` recurse through the whole tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping of parameters and buffers."""
        state: dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state["buffer:" + name] = np.asarray(b).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a mapping produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        for name, p in params.items():
            if name not in state:
                raise KeyError(f"missing parameter '{name}' in state dict")
            value = np.asarray(state[name], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': {value.shape} vs {p.data.shape}"
                )
            p.data[...] = value
        for name, buf in list(self.named_buffers()):
            key = "buffer:" + name
            if key in state:
                np.asarray(buf)[...] = state[key]

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = []
        for i, layer in enumerate(layers):
            self.add_module(str(i), layer)
            self._layers.append(layer)

    def __iter__(self):
        return iter(self._layers)

    def __getitem__(self, idx: int) -> Module:
        return self._layers[idx]

    def __len__(self) -> int:
        return len(self._layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class Linear(Module):
    """Affine layer ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng, gain=1.0))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution (NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization over NCHW channels with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float64))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x, self.gamma, self.beta, self.running_mean, self.running_var,
            training=self.training, momentum=self.momentum, eps=self.eps,
        )


class BatchNorm1d(BatchNorm2d):
    """Batch normalization for (N, C) inputs; shares the 2-D core."""


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.1) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def __init__(self, start_axis: int = 1) -> None:
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_axis)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
