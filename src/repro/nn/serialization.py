"""Weight persistence: save/load module state to ``.npz`` archives.

Keys containing ``/`` are not allowed by ``numpy.savez``-loaded mappings on
all platforms, so state-dict keys (which use ``.``) are stored verbatim.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]


def save_state(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Write a flat name->array mapping to ``path`` (.npz, compressed).

    The temp name is per-process so concurrent writers (e.g. sweep pool
    workers persisting the same artifact) never interleave into one tmp
    file; ``os.replace`` keeps the final rename atomic either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **state)
        os.replace(tmp, path)
    finally:
        # A writer that failed mid-save must not leave its temp file
        # behind (pid-suffixed names are never reused, so nothing else
        # would ever reclaim it).
        tmp.unlink(missing_ok=True)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a mapping written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: str | Path) -> None:
    """Persist ``module.state_dict()`` to ``path``."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str | Path) -> Module:
    """Load weights into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module
