"""Optimizers and learning-rate schedulers for the numpy autograd stack."""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class _Optimizer:
    """Common bookkeeping: parameter list, zero_grad, lr property."""

    def __init__(self, parameters, lr: float) -> None:
        self.params: list[Parameter] = list(parameters)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov."""

    def __init__(
        self,
        parameters,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                update = g + self.momentum * v if self.nesterov else v
            else:
                update = g
            p.data -= self.lr * update


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: _Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)


class CosineLR:
    """Cosine annealing from the base lr to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: _Optimizer, total: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total = max(total, 1)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total)
        cos = 0.5 * (1 + np.cos(np.pi * self.epoch / self.total))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
