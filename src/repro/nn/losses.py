"""Loss functions used by the detector and the gate.

The paper (Sec. 3.3) defines model loss as "the combined regression and
classification loss (using smooth L1 loss and cross-entropy loss,
respectively)" following Faster R-CNN [19]; both are implemented here along
with the binary objectness loss for the RPN and the smooth-L1 regression
loss the Deep/Attention gates are trained with.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "smooth_l1",
    "mse",
    "huber_vector",
]


def cross_entropy(logits: Tensor, targets: np.ndarray, weight: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy over a batch of integer class targets.

    Parameters
    ----------
    logits:
        ``(N, K)`` unnormalized scores.
    targets:
        ``(N,)`` integer labels in ``[0, K)``.
    weight:
        Optional per-sample weights ``(N,)``; the mean is weight-normalized.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.shape[0]
    if n == 0:
        return Tensor(np.zeros((), dtype=np.float32))
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(n), targets]
    if weight is not None:
        w = as_tensor(weight.astype(np.float32))
        total = float(weight.sum()) or 1.0
        return -(picked * w).sum() / total
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable sigmoid + BCE, mean-reduced.

    Uses the log-sum-exp identity
    ``bce = max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    logits = as_tensor(logits)
    t = np.asarray(targets, dtype=logits.data.dtype)
    if logits.size == 0:
        return Tensor(np.zeros((), dtype=np.float32))
    x = logits
    relu_x = x.relu()
    loss = relu_x - x * t + ((-x.abs()).exp() + 1.0).log()
    return loss.mean()


def smooth_l1(pred: Tensor, target: np.ndarray, beta: float = 1.0) -> Tensor:
    """Smooth-L1 (Huber) loss, mean-reduced over all elements.

    ``0.5 d^2 / beta`` for ``|d| < beta``, else ``|d| - 0.5 beta``.
    """
    pred = as_tensor(pred)
    if pred.size == 0:
        return Tensor(np.zeros((), dtype=np.float32))
    t = np.asarray(target, dtype=pred.data.dtype)
    diff = pred - t
    ad = diff.abs()
    # Branchless form: quadratic inside the beta tube, linear outside.
    quadratic = (diff * diff) * (0.5 / beta)
    linear = ad - 0.5 * beta
    mask = (ad.data < beta).astype(pred.data.dtype)
    combined = quadratic * mask + linear * (1.0 - mask)
    return combined.mean()


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error."""
    pred = as_tensor(pred)
    t = np.asarray(target, dtype=pred.data.dtype)
    diff = pred - t
    return (diff * diff).mean()


def huber_vector(pred: Tensor, target: np.ndarray, beta: float = 1.0) -> Tensor:
    """Smooth-L1 reduced per-row then averaged — the gate regression loss.

    Keeping the per-configuration dimension un-averaged before the final
    mean treats each configuration's loss prediction with equal weight.
    """
    return smooth_l1(pred, target, beta=beta)
