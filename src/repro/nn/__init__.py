"""``repro.nn`` — a from-scratch deep-learning substrate on numpy.

The paper's implementation relies on PyTorch; this package replaces it with
a compact reverse-mode autograd engine plus the layers, losses and
optimizers the EcoFusion architecture needs (see DESIGN.md, substitution
table).  The public surface intentionally mirrors PyTorch naming.
"""

from . import functional
from .attention import SpatialSelfAttention, scaled_dot_product_attention
from .flops import count_model_flops, module_flops
from .gradcheck import check_gradients, numerical_gradient
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    huber_vector,
    mse,
    smooth_l1,
)
from .optim import SGD, Adam, CosineLR, StepLR, clip_grad_norm
from .serialization import load_module, load_state, save_module, save_state
from .functional import batch_invariant
from .tensor import Tensor, as_tensor, no_grad
from . import engine

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "batch_invariant",
    "engine",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "SpatialSelfAttention",
    "scaled_dot_product_attention",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "smooth_l1",
    "mse",
    "huber_vector",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
    "count_model_flops",
    "module_flops",
    "check_gradients",
    "numerical_gradient",
]
