"""Self-attention over spatial feature maps.

Used by the paper's *Attention Gating* strategy (Sec. 4.2.3): "identical to
the Deep Gating model, except for the addition of a self-attention layer to
enable the gate to identify important areas of the input feature map."

The layer follows the non-local / SAGAN formulation: 1x1 projections to
query/key/value, scaled dot-product attention across the ``H*W`` positions,
an output projection and a residual connection with a learned scale.
"""

from __future__ import annotations

import math

import numpy as np

from . import init
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = ["SpatialSelfAttention", "scaled_dot_product_attention"]


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
    """Batched attention: softmax(q k^T / sqrt(d)) v.

    Parameters
    ----------
    q, k, v:
        Tensors of shape ``(N, L, D)``.

    Returns
    -------
    (output, weights):
        ``output`` is ``(N, L, D)``; ``weights`` the ``(N, L, L)`` attention
        map (returned for interpretability tests).
    """
    d = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(d))
    weights = scores.softmax(axis=-1)
    return weights @ v, weights


class SpatialSelfAttention(Module):
    """Single-head self-attention over the positions of an NCHW map.

    ``out = x + scale * proj(attention(q(x), k(x), v(x)))`` where q/k/v are
    1x1 convolutions implemented as position-wise linear maps.
    """

    def __init__(self, channels: int, head_dim: int | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.head_dim = head_dim or max(channels // 2, 4)
        d = self.head_dim
        self.w_q = Parameter(init.xavier_uniform((d, channels), rng))
        self.w_k = Parameter(init.xavier_uniform((d, channels), rng))
        self.w_v = Parameter(init.xavier_uniform((channels, channels), rng))
        self.w_o = Parameter(init.xavier_uniform((channels, channels), rng))
        # Residual scale initialized to zero: the layer starts as identity,
        # which keeps gate training stable (SAGAN trick).
        self.scale = Parameter(np.zeros((1,), dtype=np.float32))
        self.last_attention: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        tokens = x.reshape(n, c, h * w).swapaxes(1, 2)  # (N, L, C)
        q = tokens @ self.w_q.T
        k = tokens @ self.w_k.T
        v = tokens @ self.w_v.T
        attended, weights = scaled_dot_product_attention(q, k, v)
        self.last_attention = weights.data
        out_tokens = attended @ self.w_o.T
        out = out_tokens.swapaxes(1, 2).reshape(n, c, h, w)
        return x + out * self.scale
