"""FLOP accounting for ``repro.nn`` modules.

The hardware model (``repro.hardware``) converts counted FLOPs into Drive
PX2 latency through a calibrated linear map, mirroring how the paper
profiles each configuration offline (Sec. 3.2).  Counts follow the common
convention of 2 FLOPs per multiply-accumulate.
"""

from __future__ import annotations

from .attention import SpatialSelfAttention
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Linear,
    Module,
    Sequential,
)

__all__ = ["conv2d_flops", "linear_flops", "module_flops", "count_model_flops"]


def conv2d_flops(layer: Conv2d, in_hw: tuple[int, int]) -> tuple[int, tuple[int, int]]:
    """FLOPs of a conv layer for a given input spatial size.

    Returns ``(flops, (out_h, out_w))`` so callers can chain layers.
    """
    h, w = in_hw
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    out_h = (h + 2 * p - k) // s + 1
    out_w = (w + 2 * p - k) // s + 1
    macs = out_h * out_w * layer.out_channels * layer.in_channels * k * k
    flops = 2 * macs
    if layer.bias is not None:
        flops += out_h * out_w * layer.out_channels
    return flops, (out_h, out_w)


def linear_flops(layer: Linear) -> int:
    flops = 2 * layer.in_features * layer.out_features
    if layer.bias is not None:
        flops += layer.out_features
    return flops


def _attention_flops(layer: SpatialSelfAttention, in_hw: tuple[int, int]) -> int:
    h, w = in_hw
    length = h * w
    c, d = layer.channels, layer.head_dim
    proj = 2 * length * (2 * c * d + 2 * c * c)  # q, k, v, o projections
    scores = 2 * length * length * d  # q @ k^T
    apply = 2 * length * length * c  # weights @ v
    return proj + scores + apply


def module_flops(module: Module, in_hw: tuple[int, int]) -> tuple[int, tuple[int, int]]:
    """Recursively count FLOPs for ``module`` given an input spatial size.

    Handles the layer types used in this repo; activation/pool layers are
    counted as one FLOP per element (negligible but nonzero).  Returns
    ``(flops, out_hw)``.
    """
    from .layers import Flatten, GlobalAvgPool2d, MaxPool2d  # local: avoid cycle noise

    total = 0
    hw = in_hw
    if isinstance(module, Conv2d):
        return conv2d_flops(module, hw)
    if isinstance(module, Linear):
        return linear_flops(module), hw
    if isinstance(module, (BatchNorm2d, BatchNorm1d)):
        return 4 * module.num_features * hw[0] * hw[1], hw
    if isinstance(module, SpatialSelfAttention):
        return _attention_flops(module, hw), hw
    if isinstance(module, MaxPool2d):
        s = module.stride or module.kernel
        return hw[0] * hw[1], (hw[0] // s, hw[1] // s)
    if isinstance(module, (GlobalAvgPool2d, Flatten)):
        return hw[0] * hw[1], (1, 1)
    if isinstance(module, Sequential):
        for child in module:
            f, hw = module_flops(child, hw)
            total += f
        return total, hw
    # Generic containers: recurse over registered children in order.
    children = list(module._modules.values())
    if children:
        for child in children:
            f, hw = module_flops(child, hw)
            total += f
        return total, hw
    # Parameter-free leaf (activations, identity): ~1 FLOP / element.
    return hw[0] * hw[1], hw


def count_model_flops(module: Module, in_hw: tuple[int, int]) -> int:
    """Total FLOPs for one forward pass at the given spatial input size."""
    flops, _ = module_flops(module, in_hw)
    return flops
