"""Compiled inference engine: trace eager forwards once, replay as flat
numpy kernel programs.

The eager :class:`~repro.nn.tensor.Tensor` layer pays per-op Python
dispatch, autograd bookkeeping and fresh numpy allocations on every
call — fine for training, pure tax on the closed-loop inference path,
which never needs gradients.  This module removes that tax without
forking the math:

1. **Trace.**  A model's forward runs *once* through the existing eager
   ops inside a :class:`recording` context.  Every instrumented op
   (conv2d, eval batch-norm, max-pool, matmul, elementwise, shape ops —
   see the ``emit`` calls in ``tensor.py`` / ``functional.py``) appends
   a record of ``(op, inputs, output, attrs)`` keyed by the identity of
   the numpy arrays flowing through.  Recording refuses to start while
   gradients are enabled: a captured graph must never embed training
   behaviour.
2. **Lower.**  The record list is sliced backward from the requested
   outputs (dead ops — e.g. branches masked off by the active
   configuration, or side-products like attention maps — simply drop
   out), constants are folded (a parameter's ``w.T`` happens at compile
   time, not per frame), adjacent ``conv → bn → relu`` records are
   fused into single steps, and every step is specialized into a plain
   python closure over **preallocated output/workspace buffers**
   (``out=`` writes) and **cached im2col gather-index maps** keyed by
   ``(shape, kernel, stride)``.
3. **Replay.**  :class:`Program` executes the flat step list on new
   inputs: no Tensors, no graph, and O(1) fresh allocations per replay
   after warm-up.

Bit-identity contract
---------------------
Replay performs the *same arithmetic in the same order* as the eager
ops it was traced from: GEMMs keep their exact operand shapes and
layouts (including the ``batch_invariant`` per-sample treatment — the
recorded flag is baked into each matmul step, and replay calls the very
same helpers so the per-shape stability verdicts are shared with eager
mode), reductions keep their axes, and dtype promotions/casts are
reproduced.  Every compiled program is additionally **verified at
compile time**: it is replayed on the traced inputs and each output is
compared bit-for-bit against the eager result; any mismatch raises
instead of producing a silently-divergent program.

Program identity and memory
---------------------------
Programs are cached in a process-wide LRU keyed by (site, module,
input shapes/dtypes, ``batch_invariant`` flag) — one program per
distinct sub-batch shape, exactly mirroring the eager GEMM shapes the
bit-identity contract requires.  All replay buffers are carved from a
single bump-allocated pool that every replay resets (see
``_ReplayPool``), so hundreds of cached shape variants still execute
in the same few cache-warm megabytes, and a program's outputs are only
valid until the next replay — sites that retain results copy them.

Escape hatch: set ``REPRO_NO_COMPILE=1`` to disable compilation
globally — every site falls back to the eager path.
"""

from __future__ import annotations

import os
from time import perf_counter
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from . import tensor as _tensor_mod
from .tensor import (
    Tensor,
    _invariant_stacked_matmul,
    is_grad_enabled,
)

__all__ = [
    "TraceError",
    "recording",
    "is_recording",
    "trace",
    "Program",
    "ProgramCache",
    "use_compiled",
    "compiled_active",
    "compile_disabled",
    "maybe_run",
    "warm_up",
    "program_cache",
    "im2col_indices",
    "set_kernel_profiler",
    "engine_stats",
]

# Arrays at most this many elements with unknown provenance are frozen
# as trace-time constants (inline scalars like 1/sqrt(d)); anything
# larger must be a declared input or parameter, or tracing fails loudly.
_SMALL_CONST_ELEMS = 256


class TraceError(RuntimeError):
    """A forward could not be captured as a replayable program."""


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
@dataclass
class _Record:
    op: str
    out: np.ndarray
    ins: tuple[np.ndarray, ...]
    attrs: dict


class _Recorder:
    def __init__(self) -> None:
        self.records: list[_Record] = []
        # id(out-array) -> producing record; references keep ids stable.
        self.by_id: dict[int, _Record] = {}
        # Every Tensor._make output seen during the trace — arrays here
        # that no record produced came from an un-instrumented op and
        # must never be frozen as constants (their values are
        # input-dependent).
        self.made: set[int] = set()

    def add(self, op: str, out: np.ndarray, ins: tuple[np.ndarray, ...],
            **attrs) -> None:
        rec = _Record(op, out, ins, attrs)
        self.records.append(rec)
        self.by_id[id(out)] = rec


def is_recording() -> bool:
    """True while a :class:`recording` context is capturing ops."""
    return _tensor_mod._EMIT is not None


class recording:
    """Context that captures instrumented eager ops into a tape.

    While active, the instrumented ops in ``tensor.py`` /
    ``functional.py`` call the hook installed at ``tensor._EMIT`` with
    every executed op.  Refuses to start while gradients are enabled:
    compiled programs are inference-only, and capturing a graph-building
    forward would bake autograd-mode behaviour (e.g. the masked relu)
    into the replay.  Nesting is likewise rejected — one tape at a time.
    """

    def __init__(self) -> None:
        self.recorder = _Recorder()

    def __enter__(self) -> "recording":
        if is_grad_enabled():
            raise TraceError(
                "recording requires gradients to be disabled; wrap the "
                "traced call in no_grad()"
            )
        if _tensor_mod._EMIT is not None:
            raise TraceError("recording contexts cannot be nested")
        _tensor_mod._EMIT = self.recorder.add
        _tensor_mod._TRACK = self.recorder.made.add
        return self

    def __exit__(self, *exc: object) -> None:
        _tensor_mod._EMIT = None
        _tensor_mod._TRACK = None


# ----------------------------------------------------------------------
# im2col gather-index maps
# ----------------------------------------------------------------------
# LRU-bounded like the program cache it serves: index maps are several
# MB each at realistic feature-map sizes, and a long many-shape sweep
# must not accumulate them past the programs that reference them (a
# re-derived map costs microseconds).
_IM2COL_INDEX: OrderedDict[tuple, np.ndarray] = OrderedDict()
_IM2COL_MAX_ENTRIES = 256


def im2col_indices(c: int, h: int, w: int, kh: int, kw: int,
                   sh: int, sw: int,
                   es: tuple[int, int, int] | None = None) -> np.ndarray:
    """Gather map turning one flattened (C,H,W) sample into im2col rows.

    ``idx[row, col]`` is the within-sample *element offset* of the input
    pixel at patch position ``row = oh*Wo + ow``, column
    ``col = (c*kh + i)*kw + j`` — exactly the layout
    ``functional._im2col`` + reshape produces.  ``es`` gives the
    per-axis element strides of the sample's physical layout (defaults
    to C-contiguous ``(h*w, w, 1)``); the engine passes the traced
    array's actual strides so NHWC-ordered intermediates are gathered
    in place, without a C-ordering copy.  Cached per (shape, kernel,
    stride, layout): the map depends on nothing else.
    """
    es = es or (h * w, w, 1)
    key = (c, h, w, kh, kw, sh, sw, es)
    cached = _IM2COL_INDEX.get(key)
    if cached is not None:
        _IM2COL_INDEX.move_to_end(key)
        return cached
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    oh = np.arange(ho)[:, None, None, None, None] * sh  # row origin (y)
    ow = np.arange(wo)[None, :, None, None, None] * sw  # row origin (x)
    cc = np.arange(c)[None, None, :, None, None]
    ki = np.arange(kh)[None, None, None, :, None]
    kj = np.arange(kw)[None, None, None, None, :]
    flat = cc * es[0] + (oh + ki) * es[1] + (ow + kj) * es[2]
    idx = np.ascontiguousarray(flat.reshape(ho * wo, c * kh * kw))
    _IM2COL_INDEX[key] = idx
    while len(_IM2COL_INDEX) > _IM2COL_MAX_ENTRIES:
        _IM2COL_INDEX.popitem(last=False)
    return idx


# ----------------------------------------------------------------------
# Replay pool
# ----------------------------------------------------------------------
# All replay buffers — step outputs, im2col gather targets, batch-norm
# float64 scratch — are carved from ONE bump-allocated block that every
# program resets on entry.  Two reasons over per-program preallocation:
#
# * Cache locality.  A sweep compiles hundreds of programs (one per
#   sub-batch shape); giving each its own buffers builds a rotation of
#   cold memory hundreds of MB wide, which measurably *loses* to the
#   eager path's malloc reuse of hot heap pages.  One shared block
#   keeps every replay in the same few MB of cache-warm memory.
# * O(1) data allocations.  Carving views from the block allocates no
#   fresh data memory per replay; the block grows (rarely) to the
#   high-water mark of the largest program and is then stable.
#
# Consequence: a program's outputs are views into the pool and are only
# valid until the next replay of ANY program.  Integration sites that
# retain results across replays pass ``copy=True`` to ``maybe_run``.
_ALIGN = 64


class _ReplayPool:
    def __init__(self, nbytes: int = 1 << 24) -> None:
        self.block = np.zeros(nbytes, dtype=np.uint8)
        self.offset = 0

    def reset(self) -> None:
        self.offset = 0

    def alloc(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        start = self.offset
        end = start + ((nbytes + _ALIGN - 1) & ~(_ALIGN - 1))
        if end > self.block.nbytes:
            # Grow to the next power of two covering the request; old
            # views (from replays already consumed) die with the block.
            size = self.block.nbytes
            while size < end:
                size *= 2
            self.block = np.zeros(size, dtype=np.uint8)
            start, end = 0, ((nbytes + _ALIGN - 1) & ~(_ALIGN - 1))
        self.offset = end
        return self.block[start : start + nbytes].view(dtype).reshape(shape)


_POOL = _ReplayPool()


def _pool_like(ref: np.ndarray, dtype=None) -> Callable[[], np.ndarray]:
    """Build-time allocator for pool buffers with ``ref``'s stride order.

    numpy ufuncs and reductions allocate outputs in the K-order of their
    inputs — the eager pipeline therefore runs physically NHWC from the
    first conv on — and they *choose their inner loops* from operand
    layout.  Forcing C-order replay buffers was measured to cost up to
    16x on the pooling reduce, so replay buffers replicate the traced
    output's axis ordering exactly: allocate C-contiguously in
    stride-descending axis order, then view back to the logical shape.
    """
    strides = ref.strides
    perm = sorted(range(ref.ndim), key=lambda i: (-strides[i], i))
    inv = tuple(int(i) for i in np.argsort(perm))
    pshape = tuple(ref.shape[p] for p in perm)
    dtype = np.dtype(dtype) if dtype is not None else ref.dtype
    if perm == list(range(ref.ndim)):
        shape = ref.shape

        def alloc() -> np.ndarray:
            return _POOL.alloc(shape, dtype)

        return alloc

    def alloc() -> np.ndarray:
        return _POOL.alloc(pshape, dtype).transpose(inv)

    return alloc


# ----------------------------------------------------------------------
# Lowering IR
# ----------------------------------------------------------------------
@dataclass
class _Node:
    op: str
    out_id: int
    in_ids: tuple[int, ...]
    attrs: dict
    out_ref: np.ndarray  # eager output (shape/dtype/layout template)
    in_refs: tuple[np.ndarray, ...]  # eager inputs (layout templates)


@dataclass
class _Step:
    slot: int
    run: Callable[[list], np.ndarray]
    label: str


def _as_arrays(values: Sequence) -> list[np.ndarray]:
    out = []
    for v in values:
        out.append(v.data if isinstance(v, Tensor) else np.asarray(v))
    return out


def trace(fn: Callable, example_inputs: Sequence, params: Sequence[np.ndarray] = (),
          label: str = "program", verify: bool = True) -> "Program":
    """Capture ``fn(*example_inputs)`` and lower it to a :class:`Program`.

    ``params`` lists arrays allowed to be captured by reference
    (module parameters and buffers); any *large* array the trace
    consumes that is neither an input nor listed here raises
    :class:`TraceError` — it would mean an un-instrumented op produced
    it, and replay would silently freeze its value.
    """
    from .tensor import no_grad

    inputs = _as_arrays(example_inputs)
    if len({id(a) for a in inputs}) != len(inputs):
        # Aliased examples would collapse to one input slot and make
        # later replays silently ignore all but one runtime argument.
        raise TraceError(f"{label}: example inputs must be distinct arrays")
    ctx = recording()
    with no_grad(), ctx:
        raw_out = fn(*[Tensor(a) for a in inputs])
    if isinstance(raw_out, (tuple, list)):
        outputs = _as_arrays(raw_out)
    else:
        outputs = _as_arrays([raw_out])
    return _lower(ctx.recorder, inputs, outputs, set(id(p) for p in params),
                  label=label, verify=verify)


# ----------------------------------------------------------------------
# Passes: slice -> fold -> fuse -> build
# ----------------------------------------------------------------------
def _lower(rec: _Recorder, inputs: list[np.ndarray], outputs: list[np.ndarray],
           param_ids: set[int], label: str, verify: bool) -> "Program":
    input_ids = {id(a): i for i, a in enumerate(inputs)}

    # Backward slice from the outputs (dead-op elimination).
    needed: set[int] = set()
    stack = [id(o) for o in outputs]
    while stack:
        oid = stack.pop()
        if oid in needed or oid in input_ids:
            continue
        record = rec.by_id.get(oid)
        if record is None:
            continue  # leaf: parameter or constant, classified below
        needed.add(oid)
        stack.extend(id(a) for a in record.ins)
    nodes = [
        _Node(r.op, id(r.out), tuple(id(a) for a in r.ins), r.attrs, r.out,
              r.ins)
        for r in rec.records
        if id(r.out) in needed
    ]

    # Classify leaves + fold constants.  A record whose inputs are all
    # constants produced its (already computed, bit-exact) output at
    # trace time — that output simply *becomes* a constant.
    constants: dict[int, np.ndarray] = {}

    def classify_leaf(aid: int, arr: np.ndarray) -> None:
        if aid in input_ids or aid in constants:
            return
        if aid in param_ids:
            constants[aid] = arr
            return
        # Arrays built by Tensor._make during the trace are op outputs;
        # if no record produced them, an un-instrumented op did — their
        # values depend on the inputs and must never be frozen, however
        # small.  Anything else small is a genuine inline constant
        # (1/sqrt(d)-style scalars wrapped by as_tensor).
        if aid not in rec.made and arr.size <= _SMALL_CONST_ELEMS:
            constants[aid] = arr
            return
        raise TraceError(
            f"{label}: array of shape {arr.shape} has unknown provenance "
            "(produced by an op without trace instrumentation?)"
        )

    produced = {n.out_id for n in nodes}
    live_nodes: list[_Node] = []
    for node in nodes:
        record = rec.by_id[node.out_id]
        for aid, arr in zip(node.in_ids, record.ins):
            if aid not in produced:
                classify_leaf(aid, arr)
        if all(aid in constants for aid in node.in_ids):
            constants[node.out_id] = node.out_ref  # fold
            produced.discard(node.out_id)
        else:
            live_nodes.append(node)
    for out_arr in outputs:
        if id(out_arr) not in rec.by_id:  # raw leaf (input/constant output)
            classify_leaf(id(out_arr), out_arr)

    live_nodes = _fuse_attention(live_nodes, outputs, constants)
    live_nodes = _fuse(live_nodes, outputs)

    # Slot allocation: inputs, then constants, then step outputs.
    slot_of: dict[int, int] = {}
    values: list[np.ndarray | None] = []
    input_slots: list[int] = [0] * len(inputs)
    for aid, pos in input_ids.items():
        slot_of[aid] = len(values)
        input_slots[pos] = len(values)
        values.append(None)
    for aid, arr in constants.items():
        if aid not in slot_of:
            slot_of[aid] = len(values)
            values.append(arr)
    steps: list[_Step] = []
    for node in live_nodes:
        slot_of[node.out_id] = len(values)
        values.append(None)
        in_slots = tuple(slot_of[a] for a in node.in_ids)
        builder = _KERNELS.get(node.op)
        if builder is None:
            raise TraceError(f"{label}: no replay kernel for op '{node.op}'")
        steps.append(_Step(slot_of[node.out_id],
                           builder(node, in_slots), node.op))
    try:
        output_slots = [slot_of[id(o)] for o in outputs]
    except KeyError:  # output is a raw leaf we never classified
        raise TraceError(f"{label}: an output has unknown provenance")

    # Persistent-buffer estimate for LRU byte accounting: view-producing
    # ops and arena-shared scratch don't add program-owned memory.
    nbytes = sum(
        node.out_ref.nbytes
        for node in live_nodes
        if node.op not in ("transpose", "getitem")
    )
    program = Program(label, steps, values, input_slots, output_slots,
                      nbytes=nbytes)
    if verify:
        replayed = program(*inputs)
        for got, want in zip(replayed, outputs):
            if not (got.shape == want.shape and got.dtype == want.dtype
                    and np.array_equal(got, want, equal_nan=True)):
                raise TraceError(
                    f"{label}: compiled replay diverged from the traced "
                    "eager forward (bit-identity verification failed)"
                )
    return program


def _fuse(nodes: list[_Node], outputs: list[np.ndarray]) -> list[_Node]:
    """Peephole fusion: conv→bn→relu / conv→bn / conv→relu / add→relu.

    Only fuses when the producer's output has exactly one consumer and
    is not itself a program output — fusion must never change what any
    other step (or the caller) observes.
    """
    out_ids = {id(o) for o in outputs}
    consumers: dict[int, int] = {}
    for node in nodes:
        for aid in node.in_ids:
            consumers[aid] = consumers.get(aid, 0) + 1

    def fusable(producer: _Node) -> bool:
        return consumers.get(producer.out_id, 0) == 1 and producer.out_id not in out_ids

    fused: list[_Node] = []
    by_out: dict[int, _Node] = {}
    for node in nodes:
        prev = by_out.get(node.in_ids[0]) if node.in_ids else None
        if (
            node.op == "bn_eval"
            and prev is not None
            and prev.op == "conv2d"
            and fusable(prev)
        ):
            merged = _Node("conv2d", node.out_id, prev.in_ids,
                           {**prev.attrs, "bn": node.attrs}, node.out_ref,
                           prev.in_refs)
            fused.remove(prev)
            fused.append(merged)
            by_out.pop(prev.out_id, None)
            by_out[merged.out_id] = merged
            continue
        if node.op == "relu" and prev is not None and fusable(prev) and (
            prev.op == "conv2d" or prev.op == "add"
        ):
            merged = _Node(prev.op, node.out_id, prev.in_ids,
                           {**prev.attrs, "relu": True}, node.out_ref,
                           prev.in_refs)
            fused.remove(prev)
            fused.append(merged)
            by_out.pop(prev.out_id, None)
            by_out[merged.out_id] = merged
            continue
        fused.append(node)
        by_out[node.out_id] = node
    return fused


def _fuse_attention(nodes: list[_Node], outputs: list[np.ndarray],
                    constants: dict[int, np.ndarray]) -> list[_Node]:
    """Chain fusion for scaled-dot-product attention.

    Collapses ``matmul(q, kT) → mul(·, 1/sqrt(d)) → softmax → matmul(·, v)``
    into one ``attn_chain`` step.  The intermediate scores are float32
    but the scale constant is a float64 python scalar, so eager promotes
    everything downstream to float64 — that promotion is part of the
    bit-identity contract and stays; the fusion win is one kernel
    dispatch and one pool pass instead of four (the softmax runs
    in-place on the scaled buffer, exactly like :func:`_k_softmax`).

    Same legality rule as :func:`_fuse`: every interior value must have
    exactly one consumer and must not be a program output — the chain
    may never hide a value some other step (or the caller) reads.  The
    compile-time replay verification in :func:`_lower` then proves the
    fused kernel bit-identical to the traced eager forward.
    """
    out_ids = {id(o) for o in outputs}
    consumers: dict[int, int] = {}
    for node in nodes:
        for aid in node.in_ids:
            consumers[aid] = consumers.get(aid, 0) + 1

    def interior(node: _Node) -> bool:
        return consumers.get(node.out_id, 0) == 1 and node.out_id not in out_ids

    by_out = {node.out_id: node for node in nodes}
    consumed_by: dict[int, _Node] = {}
    for node in nodes:
        for aid in node.in_ids:
            consumed_by[aid] = node  # only queried where the count is 1

    drop: set[int] = set()
    replace: dict[int, _Node] = {}
    for sm in nodes:
        if sm.op != "softmax" or not interior(sm):
            continue
        mul = by_out.get(sm.in_ids[0])
        if mul is None or mul.op != "mul" or not interior(mul):
            continue
        scalar_ids = [a for a in mul.in_ids
                      if a in constants and constants[a].size == 1]
        tensor_ids = [a for a in mul.in_ids if a not in scalar_ids]
        if len(scalar_ids) != 1 or len(tensor_ids) != 1:
            continue
        score_mm = by_out.get(tensor_ids[0])
        if score_mm is None or score_mm.op != "matmul" or not interior(score_mm):
            continue
        out_mm = consumed_by.get(sm.out_id)
        if out_mm is None or out_mm.op != "matmul" or out_mm.in_ids[0] != sm.out_id:
            continue
        fused = _Node(
            "attn_chain",
            out_mm.out_id,
            (score_mm.in_ids[0], score_mm.in_ids[1], out_mm.in_ids[1]),
            {
                "scale": constants[scalar_ids[0]],
                "axis": sm.attrs["axis"],
                "invariant_scores": score_mm.attrs.get("invariant", False),
                "invariant_out": out_mm.attrs.get("invariant", False),
                "score_ref": score_mm.out_ref,
                "scaled_ref": mul.out_ref,
            },
            out_mm.out_ref,
            (score_mm.in_refs[0], score_mm.in_refs[1], out_mm.in_refs[1]),
        )
        drop.update((score_mm.out_id, mul.out_id, sm.out_id))
        replace[out_mm.out_id] = fused

    if not replace:
        return nodes
    return [replace.get(node.out_id, node) for node in nodes
            if node.out_id not in drop]


# ----------------------------------------------------------------------
# Replay kernels
# ----------------------------------------------------------------------
# Each builder returns run(values) -> np.ndarray, specialized with
# preallocated buffers.  The arithmetic mirrors the eager op bit for bit
# (same numpy expressions, same dtypes, same operand layouts).

def _k_conv2d(node: _Node, ins: tuple[int, ...]) -> Callable:
    from .functional import _invariant_matmul

    a = node.attrs
    wd: np.ndarray = a["weight"]
    bias: np.ndarray | None = a.get("bias")
    sh, sw = a["stride"]
    invariant: bool = a["invariant"]
    bn: dict | None = a.get("bn")
    relu: bool = a.get("relu", False)
    n, c, h, w = a["in_shape"]
    f, _, kh, kw = wd.shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    rows, k = ho * wo, c * kh * kw
    # Gather straight off the input's physical layout when it is a
    # permutation-contiguous array (the eager pipeline runs NHWC after
    # the first conv): the index map encodes the actual strides and the
    # flattening below is then a view, not a C-ordering copy.
    in_ref = node.in_refs[0]
    es = tuple(s // in_ref.itemsize for s in in_ref.strides)
    sample_perm = sorted(range(1, 4), key=lambda i: (-es[i], i))
    phys_axes = (0, *sample_perm)
    telescoped = 1
    viewable = es[0] == c * h * w
    for axis in reversed(sample_perm):
        viewable = viewable and es[axis] == telescoped
        telescoped *= in_ref.shape[axis]
    if viewable:
        idx = im2col_indices(c, h, w, kh, kw, sh, sw, es=es[1:])

        def flat2d(x: np.ndarray) -> np.ndarray:
            return x.transpose(phys_axes).reshape(n, c * h * w)
    else:  # exotic layout: fall back to a C-ordered flatten (may copy)
        idx = im2col_indices(c, h, w, kh, kw, sh, sw)

        def flat2d(x: np.ndarray) -> np.ndarray:
            return x.reshape(n, c * h * w)
    w_t = wd.reshape(f, k).T  # same view layout the eager GEMM consumes
    # The attention path can promote activations to float64, so the
    # im2col/GEMM buffers must follow the *input* dtype, not the weights'.
    in_dtype = a["in_dtype"]
    gemm_dtype = np.result_type(in_dtype, wd.dtype)
    out_alloc = _pool_like(node.out_ref)
    ws_alloc = _pool_like(node.out_ref, dtype=np.float64)
    # conv+bias feeding a fused bn: the bias add must stay in the GEMM
    # dtype (adding in float64 would change bits), but its result is
    # step-transient, so it lives in the pool too.
    bias_alloc = _pool_like(node.out_ref, dtype=gemm_dtype)
    x_slot = ins[0]
    bias_r = None if bias is None else bias.reshape(1, f, 1, 1)
    if bn is not None:
        gamma, beta = bn["gamma"], bn["beta"]
        mean, var = bn["mean"], bn["var"]
        eps = bn["eps"]
        view = (1, -1, 1, 1)

    def run(values: list) -> np.ndarray:
        x = values[x_slot]
        cols = _POOL.alloc((n, rows, k), in_dtype)
        np.take(flat2d(x), idx, axis=1, out=cols)
        cols2 = cols.reshape(n * rows, k)
        gemm = _POOL.alloc((n * rows, f), gemm_dtype)
        if invariant:
            _invariant_matmul(cols2, w_t, n, rows, f, out=gemm)
        else:
            np.matmul(cols2, w_t, out=gemm)
        conv = gemm.reshape(n, ho, wo, f).transpose(0, 3, 1, 2)
        if bn is not None:
            if bias_r is None:
                src = conv
            else:
                src = bias_alloc()
                np.add(conv, bias_r, out=src)
            # Same expression as functional.batch_norm (eval):
            #   ((x - mean) * inv_std) * gamma + beta, float64, then cast.
            # inv_std is recomputed per replay on purpose: mean/var are
            # captured by reference, so in-place buffer updates (e.g. a
            # post-compile load_state_dict) stay honored — it is a
            # per-channel vector op, trivia next to the GEMM.
            ws64 = ws_alloc()
            inv_std = 1.0 / np.sqrt(var + eps)
            np.subtract(src, mean.reshape(view), out=ws64)
            np.multiply(ws64, inv_std.reshape(view), out=ws64)
            np.multiply(ws64, gamma.reshape(view), out=ws64)
            np.add(ws64, beta.reshape(view), out=ws64)
            out = out_alloc()
            np.copyto(out, ws64)  # astype(float32)-equivalent cast
            if relu:
                np.maximum(out, 0, out=out)
            return out
        if bias_r is not None:
            out = out_alloc()
            np.add(conv, bias_r, out=out)
            if relu:
                np.maximum(out, 0, out=out)
            return out
        if relu:
            out = out_alloc()
            np.maximum(conv, 0, out=out)
            return out
        # Eager conv without bias returns exactly this (non-contiguous)
        # transpose view; downstream ops consumed the view's values.
        return conv

    return run


def _k_bn_eval(node: _Node, ins: tuple[int, ...]) -> Callable:
    a = node.attrs
    gamma, beta = a["gamma"], a["beta"]
    mean, var = a["mean"], a["var"]
    eps = a["eps"]
    view = (1, -1, 1, 1) if node.out_ref.ndim == 4 else (1, -1)
    relu = a.get("relu", False)
    out_alloc = _pool_like(node.out_ref)
    ws_alloc = _pool_like(node.out_ref, dtype=np.float64)
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        x = values[x_slot]
        ws64 = ws_alloc()
        inv_std = 1.0 / np.sqrt(var + eps)
        np.subtract(x, mean.reshape(view), out=ws64)
        np.multiply(ws64, inv_std.reshape(view), out=ws64)
        np.multiply(ws64, gamma.reshape(view), out=ws64)
        np.add(ws64, beta.reshape(view), out=ws64)
        out = out_alloc()
        np.copyto(out, ws64)
        if relu:
            np.maximum(out, 0, out=out)
        return out

    return run


def _k_maxpool2(node: _Node, ins: tuple[int, ...]) -> Callable:
    k = node.attrs["kernel"]
    out_alloc = _pool_like(node.out_ref)
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        x = values[x_slot]
        n, c, h, w = x.shape
        view = x.reshape(n, c, h // k, k, w // k, k)
        out = out_alloc()
        np.max(view, axis=(3, 5), out=out)
        return out

    return run


def _binary(ufunc):
    def build(node: _Node, ins: tuple[int, ...]) -> Callable:
        relu = node.attrs.get("relu", False)
        out_alloc = _pool_like(node.out_ref)
        a_slot, b_slot = ins

        def run(values: list) -> np.ndarray:
            out = out_alloc()
            ufunc(values[a_slot], values[b_slot], out=out)
            if relu:
                np.maximum(out, 0, out=out)
            return out

        return run

    return build


def _unary(fn):
    def build(node: _Node, ins: tuple[int, ...]) -> Callable:
        out_alloc = _pool_like(node.out_ref)
        x_slot = ins[0]

        def run(values: list) -> np.ndarray:
            out = out_alloc()
            fn(values[x_slot], out)
            return out

        return run

    return build


def _k_matmul(node: _Node, ins: tuple[int, ...]) -> Callable:
    invariant = node.attrs.get("invariant", False)
    shape, dtype = node.out_ref.shape, node.out_ref.dtype
    a_slot, b_slot = ins
    if invariant:
        def run(values: list) -> np.ndarray:
            out = _POOL.alloc(shape, dtype)
            return _invariant_stacked_matmul(
                values[a_slot], values[b_slot], out=out
            )

        return run

    def run(values: list) -> np.ndarray:
        out = _POOL.alloc(shape, dtype)
        np.matmul(values[a_slot], values[b_slot], out=out)
        return out

    return run


def _k_softmax(node: _Node, ins: tuple[int, ...]) -> Callable:
    axis = node.attrs["axis"]
    shape, dtype = node.out_ref.shape, node.out_ref.dtype
    red_shape = list(shape)
    red_shape[axis if axis >= 0 else node.out_ref.ndim + axis] = 1
    red_shape = tuple(red_shape)
    work_alloc = _pool_like(node.out_ref)
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        x = values[x_slot]
        red = _POOL.alloc(red_shape, dtype)
        work = work_alloc()
        np.max(x, axis=axis, keepdims=True, out=red)
        np.subtract(x, red, out=work)
        np.exp(work, out=work)
        np.sum(work, axis=axis, keepdims=True, out=red)
        np.divide(work, red, out=work)
        return work

    return run


def _k_attn_chain(node: _Node, ins: tuple[int, ...]) -> Callable:
    a = node.attrs
    scale: np.ndarray = a["scale"]
    axis: int = a["axis"]
    inv_scores: bool = a["invariant_scores"]
    inv_out: bool = a["invariant_out"]
    score_ref: np.ndarray = a["score_ref"]
    scaled_ref: np.ndarray = a["scaled_ref"]
    out_shape, out_dtype = node.out_ref.shape, node.out_ref.dtype
    red_shape = list(scaled_ref.shape)
    red_shape[axis if axis >= 0 else scaled_ref.ndim + axis] = 1
    red_shape = tuple(red_shape)
    # The scaled scores promote to the scale constant's dtype (float64
    # for the 1/sqrt(d) python scalar) — one pool buffer carries the
    # mul and the whole in-place softmax, mirroring _k_softmax.
    work_alloc = _pool_like(scaled_ref)
    q_slot, kt_slot, v_slot = ins

    def run(values: list) -> np.ndarray:
        scores = _POOL.alloc(score_ref.shape, score_ref.dtype)
        if inv_scores:
            _invariant_stacked_matmul(values[q_slot], values[kt_slot],
                                      out=scores)
        else:
            np.matmul(values[q_slot], values[kt_slot], out=scores)
        work = work_alloc()
        np.multiply(scores, scale, out=work)
        red = _POOL.alloc(red_shape, work.dtype)
        np.max(work, axis=axis, keepdims=True, out=red)
        np.subtract(work, red, out=work)
        np.exp(work, out=work)
        np.sum(work, axis=axis, keepdims=True, out=red)
        np.divide(work, red, out=work)
        out = _POOL.alloc(out_shape, out_dtype)
        if inv_out:
            _invariant_stacked_matmul(work, values[v_slot], out=out)
        else:
            np.matmul(work, values[v_slot], out=out)
        return out

    return run


def _k_reshape(node: _Node, ins: tuple[int, ...]) -> Callable:
    target = node.out_ref.shape
    dtype = node.out_ref.dtype
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        x = values[x_slot]
        if x.flags.c_contiguous:
            return x.reshape(target)
        # Non-contiguous source: the eager reshape copied; do the same
        # strided copy into pool memory (same element order).
        out = _POOL.alloc(target, dtype)
        np.copyto(out.reshape(x.shape), x)
        return out

    return run


def _k_transpose(node: _Node, ins: tuple[int, ...]) -> Callable:
    axes = node.attrs["axes"]
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        return values[x_slot].transpose(axes)

    return run


def _k_pad2d(node: _Node, ins: tuple[int, ...]) -> Callable:
    ph, pw = node.attrs["padding"]
    shape, dtype = node.out_ref.shape, node.out_ref.dtype
    h, w = shape[-2], shape[-1]
    interior = (Ellipsis, slice(ph, h - ph), slice(pw, w - pw))
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        out = _POOL.alloc(shape, dtype)
        # Zero only the border; the interior is fully overwritten.
        if ph:
            out[..., :ph, :] = 0
            out[..., h - ph :, :] = 0
        if pw:
            out[..., :, :pw] = 0
            out[..., :, w - pw :] = 0
        out[interior] = values[x_slot]
        return out

    return run


def _k_getitem(node: _Node, ins: tuple[int, ...]) -> Callable:
    index = node.attrs["index"]
    x_slot = ins[0]

    def run(values: list) -> np.ndarray:
        return values[x_slot][index]

    return run


def _k_concat(node: _Node, ins: tuple[int, ...]) -> Callable:
    axis = node.attrs["axis"]
    out_alloc = _pool_like(node.out_ref)

    def run(values: list) -> np.ndarray:
        out = out_alloc()
        np.concatenate([values[s] for s in ins], axis=axis, out=out)
        return out

    return run


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> None:
    np.negative(x, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)


_KERNELS: dict[str, Callable[[_Node, tuple[int, ...]], Callable]] = {
    "conv2d": _k_conv2d,
    "bn_eval": _k_bn_eval,
    "maxpool2": _k_maxpool2,
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _binary(np.divide),
    "matmul": _k_matmul,
    "relu": _unary(lambda x, out: np.maximum(x, 0, out=out)),
    "neg": _unary(lambda x, out: np.negative(x, out=out)),
    "exp": _unary(lambda x, out: np.exp(x, out=out)),
    "tanh": _unary(lambda x, out: np.tanh(x, out=out)),
    "sigmoid": _unary(_sigmoid_into),
    "softmax": _k_softmax,
    "attn_chain": _k_attn_chain,
    "reshape": _k_reshape,
    "transpose": _k_transpose,
    "pad2d": _k_pad2d,
    "getitem": _k_getitem,
    "concat": _k_concat,
}


# ----------------------------------------------------------------------
# Kernel profiling hook (repro.telemetry.profiling)
# ----------------------------------------------------------------------
# When a profiler is installed, every replayed step is wrapped in two
# monotonic-clock reads and reported as (program label, op, seconds).
# The default is None and the replay loop pays exactly one ``is None``
# check per replay — the disabled-mode overhead guard in
# tests/telemetry pins that this stays in the noise.
_PROFILER = None


def set_kernel_profiler(profiler):
    """Install (or clear, with None) the replay profiler; returns the old.

    ``repro.telemetry.profiling.kernel_profiling`` is the intended
    entry point; this setter exists so the engine never has to import
    the telemetry layer.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous


# ----------------------------------------------------------------------
# Program
# ----------------------------------------------------------------------
class Program:
    """A compiled forward: a flat list of specialized kernel steps.

    Calling the program replays the captured computation on new inputs.
    Outputs may be views into the program's internal buffers — they are
    valid until the next replay; callers that retain results across
    replays must copy (see :func:`maybe_run`'s ``copy`` flag).
    """

    def __init__(self, label: str, steps: list[_Step],
                 values: list[np.ndarray | None], input_slots: list[int],
                 output_slots: list[int], nbytes: int = 0) -> None:
        self.label = label
        self._steps = steps
        self._values = values
        self._input_slots = input_slots
        self._output_slots = output_slots
        self.nbytes = nbytes  # persistent (non-arena) buffer estimate
        self._dynamic_slots = list(input_slots) + [s.slot for s in steps]
        self.replays = 0

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def __call__(self, *arrays: np.ndarray) -> list[np.ndarray]:
        # Reclaim the shared replay pool: every buffer of the previous
        # replay (of any program) is dead by the maybe_run contract.
        _POOL.reset()
        values = self._values
        for slot, arr in zip(self._input_slots, arrays):
            values[slot] = arr
        profiler = _PROFILER
        if profiler is None:
            for step in self._steps:
                values[step.slot] = step.run(values)
        else:
            label = self.label
            for step in self._steps:
                start = perf_counter()
                values[step.slot] = step.run(values)
                profiler.record(label, step.label, perf_counter() - start)
        self.replays += 1
        outputs = [values[s] for s in self._output_slots]
        # Drop the dynamic slots: a cached program must not pin the
        # caller's input arrays or stale pool views between replays
        # (constant slots keep their folded values).
        for slot in self._dynamic_slots:
            values[slot] = None
        return outputs

    def describe(self) -> str:
        ops = [s.label for s in self._steps]
        return f"{self.label}: {len(ops)} steps [{', '.join(ops)}]"


# ----------------------------------------------------------------------
# Cache + integration helpers
# ----------------------------------------------------------------------
def compile_disabled() -> bool:
    """True when the ``REPRO_NO_COMPILE=1`` escape hatch is set."""
    return os.environ.get("REPRO_NO_COMPILE", "") not in ("", "0")


_COMPILE_DEPTH = 0


class use_compiled:
    """Context enabling compiled-program execution for integrated sites.

    Re-entrant: nesting increases a depth counter, and compiled replay
    stays active until the outermost context exits.
    """

    def __enter__(self) -> "use_compiled":
        global _COMPILE_DEPTH
        _COMPILE_DEPTH += 1
        return self

    def __exit__(self, *exc: object) -> None:
        global _COMPILE_DEPTH
        _COMPILE_DEPTH -= 1


def compiled_active() -> bool:
    """True when integrated sites should replay compiled programs."""
    return (
        _COMPILE_DEPTH > 0
        and not compile_disabled()
        and _tensor_mod._EMIT is None
    )


@dataclass
class _Entry:
    program: Program | None  # None: compilation failed, stay eager
    owner: object = None  # keeps id(owner) stable while cached


class ProgramCache:
    """LRU of compiled programs keyed by (site, module, shapes, flags).

    Evicts by entry count *and* by the sum of the programs' persistent
    buffer bytes, so many-shape workloads (per-sub-batch branch
    programs) stay memory-bounded; a re-compiled cold shape costs one
    traced forward.
    """

    def __init__(self, maxsize: int = 1024,
                 max_bytes: int = 2048 * 1024 * 1024) -> None:
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.compiles = 0  # misses that produced a live program
        self.evictions = 0
        # Most recently resolved program (compile() warm-up introspection).
        self.last_program: Program | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.total_bytes = 0

    def lookup(self, key: tuple) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self.last_program = entry.program
        return entry

    def store(self, key: tuple, entry: _Entry) -> None:
        self.misses += 1
        self._entries[key] = entry
        if entry.program is not None:
            self.total_bytes += entry.program.nbytes
            self.compiles += 1
        self.last_program = entry.program
        while self._entries and (
            len(self._entries) > self.maxsize
            or self.total_bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            if evicted.program is not None:
                self.total_bytes -= evicted.program.nbytes
            if evicted is entry:  # single entry above budget: keep nothing
                break

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the telemetry layer (plain ints, cheap).

        Deltas of this dict bracket a region of interest (one drive,
        one shard); the telemetry integration records those deltas as
        mergeable counters so per-shard LRU behavior aggregates
        correctly across a process pool.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "program_bytes": self.total_bytes,
        }


_CACHE = ProgramCache()


def program_cache() -> ProgramCache:
    """The process-wide program cache (shared across policies/shards)."""
    return _CACHE


def engine_stats() -> dict[str, int]:
    """Process-wide engine counters: program LRU + replay-pool footprint."""
    stats = _CACHE.stats()
    stats["pool_bytes"] = _POOL.block.nbytes
    stats["im2col_entries"] = len(_IM2COL_INDEX)
    stats["replay_fallbacks"] = _REPLAY_FALLBACKS
    return stats


# Replays that raised and were rescued by the eager fallback (a compiled
# program is a pure re-expression of the eager computation, so falling
# back changes wall time, never bits).  Module-level int rather than a
# telemetry counter: the engine never imports the telemetry layer — the
# runner diffs engine_stats() into the metrics registry instead.
_REPLAY_FALLBACKS = 0

# Test/fuzz seam: callable invoked with the site label just before every
# program replay; raising simulates a replay failure.  Installed only by
# repro.resilience.guards.inject_replay_faults — None in production.
_REPLAY_FAULT_INJECTOR = None


def set_replay_fault_injector(injector):
    """Install (or clear, with None) the replay fault injector; returns the old."""
    global _REPLAY_FAULT_INJECTOR
    previous = _REPLAY_FAULT_INJECTOR
    _REPLAY_FAULT_INJECTOR = injector
    return previous


def _collect_params(owner) -> list[np.ndarray]:
    """Parameter/buffer arrays of a Module (or object with ``.network``)."""
    module = getattr(owner, "network", owner)
    params: list[np.ndarray] = []
    named_parameters = getattr(module, "named_parameters", None)
    if named_parameters is not None:
        params.extend(p.data for _, p in named_parameters())
        params.extend(np.asarray(b) for _, b in module.named_buffers())
    return params


def warm_up(
    site: str,
    owner,
    fn: Callable,
    shapes: Sequence[tuple[int, ...]],
    invariant: bool = False,
    seed: int = 0,
) -> list[Program]:
    """Pre-compile ``fn`` for the given input shapes; returns the programs.

    The ``compile(shapes)`` entry points of the gate network and the
    branch detector route here.  Warm-up inputs are random, never
    zeros: the GEMM row-stability verdicts decided on first contact
    must be representative of real data.  ``invariant`` compiles the
    ``batch_invariant`` variants the windowed runner replays.  Returns
    ``[]`` when compilation is disabled.
    """
    from contextlib import nullcontext

    from .functional import batch_invariant

    rng = np.random.default_rng(seed)
    programs: list[Program] = []
    ctx = batch_invariant() if invariant else nullcontext()
    with use_compiled(), ctx:
        for shape in shapes:
            example = rng.standard_normal(shape).astype(np.float32)
            if maybe_run(site, owner, fn, (example,)) is not None:
                programs.append(_CACHE.last_program)
    return [p for p in programs if p is not None]


def maybe_run(
    site: str,
    owner,
    fn: Callable,
    inputs: Sequence,
    copy: bool = False,
) -> list[np.ndarray] | None:
    """Replay ``fn(*inputs)`` through a cached compiled program.

    Returns ``None`` when compilation is inactive (no
    :class:`use_compiled` context, escape hatch set, currently tracing)
    or when this site previously failed to compile — the caller then
    takes its eager path.  ``copy=True`` returns fresh arrays (for
    callers that retain results across replays).
    """
    from .tensor import batch_invariant_enabled

    if not compiled_active():
        return None
    arrays = _as_arrays(inputs)
    # Inputs must not live in the replay pool (the replay reclaims it
    # before reading them); integration sites pass heap arrays, but a
    # defensive copy keeps a future refactor from corrupting silently.
    arrays = [
        np.array(a) if np.may_share_memory(a, _POOL.block) else a
        for a in arrays
    ]
    invariant = batch_invariant_enabled()
    key = (site, id(owner), tuple(a.shape for a in arrays),
           tuple(a.dtype.str for a in arrays), invariant)
    entry = _CACHE.lookup(key)
    if entry is None:
        try:
            program = trace(fn, arrays, params=_collect_params(owner),
                            label=site)
        except TraceError:
            program = None
        entry = _Entry(program=program, owner=owner)
        _CACHE.store(key, entry)
    if entry.program is None:
        return None
    try:
        if _REPLAY_FAULT_INJECTOR is not None:
            _REPLAY_FAULT_INJECTOR(site)
        outs = entry.program(*arrays)
    except Exception:
        # A replay must never take the process down: count the rescue
        # and hand the caller its eager path.  Partial pool writes are
        # harmless — every replay reclaims the pool before reading it.
        global _REPLAY_FALLBACKS
        _REPLAY_FALLBACKS += 1
        return None
    if copy:
        outs = [np.array(o) for o in outs]
    return outs
