"""Numerical gradient verification for autograd ops (test utility)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> None:
    """Assert analytic gradients match central differences for every input.

    Inputs should be float64 tensors with ``requires_grad=True`` for the
    comparison to be meaningful.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}"
            )
