"""Structured neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Implements the convolution / pooling / resampling primitives the detector
needs, each with a hand-derived backward pass:

* :func:`conv2d` — im2col + GEMM convolution (NCHW layout).
* :func:`max_pool2d` / :func:`avg_pool2d` / :func:`global_avg_pool2d`.
* :func:`roi_align` — bilinear region-of-interest pooling for the detection
  head (differentiable w.r.t. the feature map).
* :func:`upsample_nearest` — integer-factor upsampling (radar tensors).
* :func:`batch_norm` — train/eval batch normalization core.

All functions accept and return :class:`Tensor` and participate in the
autograd graph.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import tensor as _tensor_mod
from .tensor import Tensor, as_tensor, batch_invariant_enabled
from .tensor import _set_batch_invariant

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "roi_align",
    "upsample_nearest",
    "batch_norm",
    "linear",
    "dropout",
]


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    return (value, value) if isinstance(value, int) else (int(value[0]), int(value[1]))


class batch_invariant:
    """Force batched tensor ops to be bit-identical per sample.

    BLAS GEMM kernels choose blocking (and therefore rounding) based on
    the full matrix shape, so a conv over N stacked samples is not
    guaranteed to reproduce the batch-of-one result row for row — it
    happens to on some shapes and silently diverges on others.  Inside
    this context :func:`conv2d` runs one GEMM per sample over a fresh
    copy of that sample's im2col rows, and stacked (3-D) ``Tensor``
    matmuls — the attention gate's token projections and attention
    products — run one product per leading-axis sample (see
    ``tensor._invariant_stacked_matmul``): the expensive python/layout
    work stays batched while every sample's arithmetic matches its
    standalone execution.  The windowed closed-loop runner wraps its
    lookahead batches in this so batched drives reproduce sequential
    ones; the equivalence test suite and the benchmark's in-run diff
    verify the bit-identity end to end on the running BLAS.
    """

    def __enter__(self) -> "batch_invariant":
        self._prev = _set_batch_invariant(True)
        return self

    def __exit__(self, *exc: object) -> None:
        _set_batch_invariant(self._prev)


# GEMM row-stability verdicts per (batch, rows, k, f, dtype) shape.
# BLAS picks its blocking (and therefore its summation order) from the
# matrix shapes, so one bit-level comparison on real data decides
# whether the full-batch GEMM reproduces per-sample results for that
# shape; the equivalence tests and bench_runtime's in-run diff guard
# the (unobserved so far) case of a data- or alignment-dependent kernel.
_STABLE_GEMM: dict[tuple[int, int, int, int, str], bool] = {}

# For unstable shapes (per-sample loop every call): whether the loop's
# defensive fresh-copy of each sample's rows affects any output bit.
# Verified once per shape; compiled-program replay skips the copies when
# it provably cannot matter.  The eager path always keeps the reference
# copy semantics.
_LOOP_NOCOPY: dict[tuple[int, int, int, int, str], bool] = {}


def _invariant_matmul(
    cols_mat: np.ndarray,
    w_t: np.ndarray,
    n: int,
    rows: int,
    f: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Batched GEMM whose rows match per-sample execution.

    The reference result is one GEMM per sample, each over a fresh
    contiguous copy of that sample's rows — matching a batch-of-one
    forward's freshly allocated im2col buffer, since BLAS kernels can be
    sensitive to operand buffer placement as well as shape.  Per shape,
    the first call also runs the full-batch GEMM and compares bits: when
    the kernel is row-stable for that shape (common), later calls take
    the fast single-GEMM path; otherwise they keep the per-sample loop.
    ``out`` optionally receives the result (compiled-program replay
    passes a persistent buffer).
    """
    key = (n, rows, cols_mat.shape[1], f, cols_mat.dtype.str)
    verdict = _STABLE_GEMM.get(key)
    if verdict:
        return cols_mat @ w_t if out is None else np.matmul(cols_mat, w_t, out=out)
    compiled_replay = out is not None
    if out is None:
        out = np.empty((n * rows, f), dtype=cols_mat.dtype)
    if compiled_replay and _LOOP_NOCOPY.get(key):
        # Compiled replay, shape verified copy-insensitive: per-sample
        # GEMMs straight off the (contiguous) slices, no fresh copies.
        for i in range(n):
            np.matmul(cols_mat[i * rows : (i + 1) * rows], w_t,
                      out=out[i * rows : (i + 1) * rows])
        return out
    for i in range(n):
        sample = np.array(cols_mat[i * rows : (i + 1) * rows])
        np.matmul(sample, w_t, out=out[i * rows : (i + 1) * rows])
    if verdict is None:
        _STABLE_GEMM[key] = bool(np.array_equal(cols_mat @ w_t, out))
    if compiled_replay and key not in _LOOP_NOCOPY and not _STABLE_GEMM[key]:
        # Decide once per unstable shape whether the defensive
        # fresh-copy in the reference loop changes any bit; when it
        # does not (the observed case), later compiled replays skip it.
        probe = np.empty_like(out)
        for i in range(n):
            np.matmul(cols_mat[i * rows : (i + 1) * rows], w_t,
                      out=probe[i * rows : (i + 1) * rows])
        _LOOP_NOCOPY[key] = bool(np.array_equal(probe, out))
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Extract sliding patches: (N,C,H,W) -> (N, Ho, Wo, C, kh, kw)."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))  # (N,C,Ho',Wo',kh,kw)
    windows = windows[:, :, ::sh, ::sw]
    return windows.transpose(0, 2, 3, 1, 4, 5)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add patches back into an image.

    ``cols`` has shape (N, Ho, Wo, C, kh, kw); returns (N, C, H, W).
    The loop runs kh*kw times (9 for a 3x3 kernel), each iteration a strided
    vectorized add — fast enough for this repo's model sizes.
    """
    n, c, h, w = x_shape
    out = np.zeros(x_shape, dtype=cols.dtype)
    ho, wo = cols.shape[1], cols.shape[2]
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + sh * ho : sh, j : j + sw * wo : sw] += cols[
                :, :, :, :, i, j
            ].transpose(0, 3, 1, 2)
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int | tuple[int, int] = 1,
    padding: int | tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation in NCHW layout.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-channel bias of shape ``(C_out,)``.
    stride, padding:
        Integer or ``(h, w)`` pairs.
    """
    x = as_tensor(x)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    xp = x.pad2d((ph, pw)) if (ph or pw) else x

    xd = xp.data
    wd = weight.data
    f, c_in, kh, kw = wd.shape
    n, c, h, w = xd.shape
    if c != c_in:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c_in}")
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1

    if kh == 1 and kw == 1:
        # 1x1 kernels need no patch extraction: the im2col matrix is just
        # the (strided) input with channels moved last — same values, so
        # the GEMM below is bit-identical to the general path.
        strided = xd[:, :, ::sh, ::sw]
        cols_mat = strided.transpose(0, 2, 3, 1).reshape(n * ho * wo, c)
    else:
        cols = _im2col(xd, kh, kw, sh, sw)  # (N,Ho,Wo,C,kh,kw)
        cols_mat = cols.reshape(n * ho * wo, c * kh * kw)
    w_mat = wd.reshape(f, c * kh * kw)
    invariant = batch_invariant_enabled() and n > 1
    if invariant:
        out = _invariant_matmul(cols_mat, w_mat.T, n, ho * wo, f)
    else:
        out = cols_mat @ w_mat.T  # (N*Ho*Wo, F)
    out = out.reshape(n, ho, wo, f).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, f, 1, 1)
    out = out.astype(xd.dtype, copy=False)
    if _tensor_mod._EMIT is not None:
        _tensor_mod._EMIT(
            "conv2d", out, (xd,),
            weight=wd,
            bias=None if bias is None else bias.data,
            stride=(sh, sw),
            invariant=invariant,
            in_shape=xd.shape,
            in_dtype=xd.dtype,
        )

    parents = (xp, weight) if bias is None else (xp, weight, bias)

    def backward(g: np.ndarray):
        g_mat = g.transpose(0, 2, 3, 1).reshape(n * ho * wo, f)
        gw = (g_mat.T @ cols_mat).reshape(wd.shape)
        gcols = (g_mat @ w_mat).reshape(n, ho, wo, c, kh, kw)
        gx = _col2im(gcols, xd.shape, kh, kw, sh, sw)
        if bias is None:
            return gx, gw
        gb = g.sum(axis=(0, 2, 3))
        return gx, gw, gb

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling.  Spatial dims must be divisible by ``stride`` when
    ``kernel == stride`` (the fast reshape path used throughout this repo)."""
    x = as_tensor(x)
    stride = kernel if stride is None else stride
    xd = x.data
    n, c, h, w = xd.shape
    if kernel == stride and h % kernel == 0 and w % kernel == 0:
        k = kernel
        view = xd.reshape(n, c, h // k, k, w // k, k)
        out = view.max(axis=(3, 5))
        if _tensor_mod._EMIT is not None:
            _tensor_mod._EMIT("maxpool2", out, (xd,), kernel=k)
        expanded = out[:, :, :, None, :, None]
        mask = view == expanded
        counts = mask.sum(axis=(3, 5), keepdims=True)

        def backward(g: np.ndarray):
            gexp = g[:, :, :, None, :, None]
            gview = np.where(mask, gexp / counts, 0.0)
            return (gview.reshape(n, c, h, w).astype(xd.dtype),)

        return Tensor._make(out, (x,), backward)

    # General (rare) path via sliding windows.
    windows = sliding_window_view(xd, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]
    out = windows.max(axis=(4, 5))
    ho, wo = out.shape[2], out.shape[3]

    def backward_general(g: np.ndarray):
        gx = np.zeros_like(xd)
        for i in range(ho):
            for j in range(wo):
                patch = xd[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
                m = patch == out[:, :, i : i + 1, j : j + 1]
                cnt = m.sum(axis=(2, 3), keepdims=True)
                gx[:, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel] += (
                    m * g[:, :, i : i + 1, j : j + 1] / cnt
                )
        return (gx,)

    return Tensor._make(out, (x,), backward_general)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Average pooling with ``stride == kernel`` (divisible dims required)."""
    x = as_tensor(x)
    xd = x.data
    n, c, h, w = xd.shape
    k = kernel
    if h % k or w % k:
        raise ValueError(f"avg_pool2d requires divisible dims, got {h}x{w} pool {k}")
    out = xd.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(g: np.ndarray):
        gx = np.repeat(np.repeat(g, k, axis=2), k, axis=3) / (k * k)
        return (gx.astype(xd.dtype),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: (N,C,H,W) -> (N,C)."""
    return as_tensor(x).mean(axis=(2, 3))


def upsample_nearest(x: Tensor, factor: int) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor (NCHW)."""
    x = as_tensor(x)
    xd = x.data
    out = np.repeat(np.repeat(xd, factor, axis=2), factor, axis=3)
    n, c, h, w = xd.shape

    def backward(g: np.ndarray):
        gx = g.reshape(n, c, h, factor, w, factor).sum(axis=(3, 5))
        return (gx.astype(xd.dtype),)

    return Tensor._make(out, (x,), backward)


def roi_align(
    features: Tensor,
    rois: np.ndarray,
    output_size: int,
    spatial_scale: float,
) -> Tensor:
    """Bilinear ROI pooling (simplified ROIAlign, one sample per bin).

    Parameters
    ----------
    features:
        Feature map ``(N, C, H, W)``.
    rois:
        ``(R, 5)`` array of ``(batch_index, x1, y1, x2, y2)`` in *image*
        coordinates.  Not differentiated (boxes come from a decoded RPN
        proposal set, detached as in standard Faster R-CNN training).
    output_size:
        Side length of the pooled grid (e.g. 4 -> 4x4 bins).
    spatial_scale:
        Feature-map stride reciprocal (1/8 for stride-8 features).

    Returns
    -------
    Tensor of shape ``(R, C, output_size, output_size)``.
    """
    features = as_tensor(features)
    fd = features.data
    n, c, h, w = fd.shape
    rois = np.asarray(rois, dtype=np.float64)
    r = rois.shape[0]
    s = output_size

    if r == 0:
        empty = np.zeros((0, c, s, s), dtype=fd.dtype)
        return Tensor._make(empty, (features,), lambda g: (np.zeros_like(fd),))

    batch_idx = rois[:, 0].astype(np.int64)
    x1 = rois[:, 1] * spatial_scale
    y1 = rois[:, 2] * spatial_scale
    x2 = rois[:, 3] * spatial_scale
    y2 = rois[:, 4] * spatial_scale
    bin_w = np.maximum(x2 - x1, 1e-3) / s
    bin_h = np.maximum(y2 - y1, 1e-3) / s

    # Sample point at the centre of each bin: shape (R, S)
    grid = np.arange(s, dtype=np.float64) + 0.5
    sample_x = x1[:, None] + grid[None, :] * bin_w[:, None]  # (R,S)
    sample_y = y1[:, None] + grid[None, :] * bin_h[:, None]  # (R,S)

    sx = np.clip(sample_x, 0, w - 1)
    sy = np.clip(sample_y, 0, h - 1)
    x0 = np.floor(sx).astype(np.int64)
    y0 = np.floor(sy).astype(np.int64)
    x1i = np.minimum(x0 + 1, w - 1)
    y1i = np.minimum(y0 + 1, h - 1)
    wx = (sx - x0).astype(fd.dtype)  # (R,S)
    wy = (sy - y0).astype(fd.dtype)

    # Broadcast to (R, S, S): rows index y bins, cols index x bins.
    bi = batch_idx[:, None, None]
    y0b, y1b = y0[:, :, None], y1i[:, :, None]
    x0b, x1b = x0[:, None, :], x1i[:, None, :]
    wyb, wxb = wy[:, :, None], wx[:, None, :]

    f = fd.transpose(0, 2, 3, 1)  # (N,H,W,C) for gather convenience
    v00 = f[bi, y0b, x0b]  # (R,S,S,C)
    v01 = f[bi, y0b, x1b]
    v10 = f[bi, y1b, x0b]
    v11 = f[bi, y1b, x1b]
    w00 = ((1 - wyb) * (1 - wxb))[..., None]
    w01 = ((1 - wyb) * wxb)[..., None]
    w10 = (wyb * (1 - wxb))[..., None]
    w11 = (wyb * wxb)[..., None]
    pooled = v00 * w00 + v01 * w01 + v10 * w10 + v11 * w11  # (R,S,S,C)
    out = pooled.transpose(0, 3, 1, 2).astype(fd.dtype, copy=False)

    def backward(g: np.ndarray):
        gf = np.zeros_like(f)
        gp = g.transpose(0, 2, 3, 1)  # (R,S,S,C)
        bidx = np.broadcast_to(bi, gp.shape[:3])
        np.add.at(gf, (bidx, np.broadcast_to(y0b, gp.shape[:3]), np.broadcast_to(x0b, gp.shape[:3])), gp * w00)
        np.add.at(gf, (bidx, np.broadcast_to(y0b, gp.shape[:3]), np.broadcast_to(x1b, gp.shape[:3])), gp * w01)
        np.add.at(gf, (bidx, np.broadcast_to(y1b, gp.shape[:3]), np.broadcast_to(x0b, gp.shape[:3])), gp * w10)
        np.add.at(gf, (bidx, np.broadcast_to(y1b, gp.shape[:3]), np.broadcast_to(x1b, gp.shape[:3])), gp * w11)
        return (gf.transpose(0, 3, 1, 2),)

    return Tensor._make(out, (features,), backward)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis of an NCHW (or NC) tensor.

    Running statistics are updated *in place* when ``training`` is True,
    mirroring the PyTorch convention.
    """
    x = as_tensor(x)
    xd = x.data
    if xd.ndim == 4:
        axes = (0, 2, 3)
        view = (1, -1, 1, 1)
    elif xd.ndim == 2:
        axes = (0,)
        view = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {xd.ndim}-D")
    if training and _tensor_mod._EMIT is not None:
        # Refuse BEFORE touching the running statistics: the engine's
        # eager fallback re-runs this forward, and a stat update here
        # would otherwise be applied twice.
        from .engine import TraceError

        raise TraceError(
            "training-mode batch_norm mutates running statistics and "
            "cannot be captured in a compiled inference program"
        )

    if training:
        mean = xd.mean(axis=axes)
        var = xd.var(axis=axes)
        count = xd.size // xd.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1 - momentum
        running_mean += momentum * mean
        running_var *= 1 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (xd - mean.reshape(view)) * inv_std.reshape(view)
    out = gamma.data.reshape(view) * x_hat + beta.data.reshape(view)
    out_cast = out.astype(xd.dtype, copy=False)
    if _tensor_mod._EMIT is not None:
        _tensor_mod._EMIT(
            "bn_eval", out_cast, (xd,),
            gamma=gamma.data, beta=beta.data,
            mean=running_mean, var=running_var, eps=eps,
        )

    def backward(g: np.ndarray):
        m = xd.size // xd.shape[1]
        g_gamma = (g * x_hat).sum(axis=axes)
        g_beta = g.sum(axis=axes)
        if training:
            gxh = g * gamma.data.reshape(view)
            gx = (
                gxh
                - gxh.mean(axis=axes, keepdims=True)
                - x_hat * (gxh * x_hat).mean(axis=axes, keepdims=True)
            ) * inv_std.reshape(view)
            del m
        else:
            gx = g * gamma.data.reshape(view) * inv_std.reshape(view)
        return gx.astype(xd.dtype), g_gamma, g_beta

    return Tensor._make(out_cast, (x, gamma, beta), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = as_tensor(x) @ weight.T
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity in eval mode."""
    if not training or p <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    data = x.data * mask
    return Tensor._make(data, (x,), lambda g: (g * mask,))
