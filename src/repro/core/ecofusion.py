"""The EcoFusion model: Algorithm 1 of the paper.

Per input frame:

1. every modality stem runs (lines 2-3), producing features ``F``;
2. the gate estimates ``L_f(phi)`` for all configurations (line 4);
3. ``rho`` selects candidates within ``gamma`` of the best (line 5);
4. the joint optimization picks ``phi*`` (lines 6-8);
5. only the branches of ``phi*`` execute (lines 9-10);
6. the fusion block late-fuses their detections (line 11).

The model also exposes :meth:`run_config` for executing any fixed
configuration — that is exactly what the paper's None / Early / Late
baselines are (see ``repro.baselines``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.radiate import Sample
from ..datasets.sensors import SENSORS
from ..datasets.transforms import normalize_sample
from ..fusion.late import BranchOutput, FusionBlock
from ..nn import Tensor, batch_invariant, engine, no_grad
from ..perception.detections import Detections
from ..perception.detector import BranchDetector
from ..perception.backbone import StemBlock
from .config import BRANCHES, ModelConfiguration
from .gating.base import Gate
from .optimization import SelectionResult, select_configuration

__all__ = ["EcoFusionModel", "EcoFusionResult", "BranchOutputCache"]


@dataclass
class EcoFusionResult:
    """Outcome of one adaptive inference."""

    sample_id: int
    context: str
    detections: Detections
    config_name: str
    selection: SelectionResult | None
    latency_ms: float
    energy_joules: float
    static_energy_joules: float


class BranchOutputCache:
    """Memoized per-(sample, branch) detections.

    Evaluating many configurations / gates / lambda values over the same
    split re-executes identical branch inferences; this cache makes every
    evaluation after the first nearly free, without changing any result
    (branches are deterministic in eval mode).  Keys use the sample's
    globally-unique ``uid``, so samples from different datasets (e.g. a
    held-out scenario pool) can never alias each other.
    """

    def __init__(self, memoize_outputs: bool = True) -> None:
        self._store: dict[tuple[str, str], Detections] = {}
        self._fused: dict[tuple[str, str], Detections] = {}
        self._loss: dict[tuple[str, str], float] = {}
        self._stems: dict[tuple[str, str], np.ndarray] = {}
        # Fused-output/loss memoization is part of the sweep engine's
        # batched hot path; disable it to reproduce the original
        # branch-level-only cache (the benchmark's sequential baseline).
        self.memoize_outputs = bool(memoize_outputs)
        # Plain-int hit/miss counts per memo kind; the telemetry layer
        # reads deltas of stats().  Disabled memo kinds count nothing.
        self._stats = {
            "branch": [0, 0], "fused": [0, 0], "loss": [0, 0], "stem": [0, 0],
        }

    def get(self, sample: Sample, branch: str) -> Detections | None:
        hit = self._store.get((sample.uid, branch))
        self._stats["branch"][0 if hit is not None else 1] += 1
        return hit

    def put(self, sample: Sample, branch: str, detections: Detections) -> None:
        self._store[(sample.uid, branch)] = detections

    def get_loss(self, sample: Sample, config_name: str) -> float | None:
        """Memoized fusion loss for one (sample, configuration)."""
        if not self.memoize_outputs:
            return None
        hit = self._loss.get((sample.uid, config_name))
        self._stats["loss"][0 if hit is not None else 1] += 1
        return hit

    def put_loss(self, sample: Sample, config_name: str, loss: float) -> None:
        if self.memoize_outputs:
            self._loss[(sample.uid, config_name)] = loss

    def get_stem(self, sample: Sample, sensor: str) -> np.ndarray | None:
        """Memoized stem-feature row for one (sample, sensor)."""
        if not self.memoize_outputs:
            return None
        hit = self._stems.get((sample.uid, sensor))
        self._stats["stem"][0 if hit is not None else 1] += 1
        return hit

    def put_stem(self, sample: Sample, sensor: str, row: np.ndarray) -> None:
        if self.memoize_outputs:
            self._stems[(sample.uid, sensor)] = row

    def get_fused(self, sample: Sample, config_name: str) -> Detections | None:
        """Memoized late-fusion output for one (sample, configuration).

        Fusion is deterministic given the branch outputs, so sweeping
        many policies over the same drive re-derives identical fused
        detections whenever two policies pick the same configuration on
        the same frame; this makes the repeat free.
        """
        if not self.memoize_outputs:
            return None
        hit = self._fused.get((sample.uid, config_name))
        self._stats["fused"][0 if hit is not None else 1] += 1
        return hit

    def peek_fused(self, sample: Sample, config_name: str) -> bool:
        """True if a fused output is memoized — without touching stats.

        The tracer uses this for the per-frame cache-hit attribute; a
        stat-free probe keeps tracing from inflating hit counts.
        """
        return (
            self.memoize_outputs
            and (sample.uid, config_name) in self._fused
        )

    def put_fused(
        self, sample: Sample, config_name: str, detections: Detections
    ) -> None:
        if self.memoize_outputs:
            self._fused[(sample.uid, config_name)] = detections

    def stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counts per memo kind (branch/fused/loss/stem)."""
        return {
            kind: {"hits": cell[0], "misses": cell[1]}
            for kind, cell in self._stats.items()
        }

    def __len__(self) -> int:
        return len(self._store)

    def total_entries(self) -> int:
        """Memoized entries across all four stores (trim accounting)."""
        return (
            len(self._store) + len(self._fused)
            + len(self._loss) + len(self._stems)
        )

    def trim(self, max_entries: int) -> bool:
        """Drop every memoized output once past ``max_entries``.

        Long-lived holders (the drive service) bound memory with this:
        keys are per-sample uids, so entries for finished streams never
        hit again and simply accumulate.  Dropping is always safe —
        cached and fresh outputs are bit-identical by contract — so a
        full clear costs only recomputation, never correctness.  Returns
        True when a trim happened; hit/miss stats are preserved.
        """
        if max_entries <= 0 or self.total_entries() <= max_entries:
            return False
        self._store.clear()
        self._fused.clear()
        self._loss.clear()
        self._stems.clear()
        return True


@dataclass
class EcoFusionModel:
    """Stems + branches + fusion block + cost model (gate supplied per call)."""

    stems: dict[str, StemBlock]
    branches: dict[str, BranchDetector]
    library: list[ModelConfiguration]
    costs: "SystemCosts"
    fusion_block: FusionBlock = field(default_factory=FusionBlock)
    image_size: int = 64

    def __post_init__(self) -> None:
        missing = [b for c in self.library for b in c.branches if b not in self.branches]
        if missing:
            raise ValueError(f"library references branches without models: {sorted(set(missing))}")
        self._energy_vector = np.array(
            [self.costs.config_costs[c.name].energy_joules for c in self.library]
        )

    # ------------------------------------------------------------------
    @property
    def config_names(self) -> list[str]:
        return [c.name for c in self.library]

    def config_named(self, name: str) -> ModelConfiguration:
        from .config import config_by_name

        return config_by_name(self.library, name)

    def energies(self) -> np.ndarray:
        """E(phi) aligned with the library order (Joules)."""
        return self._energy_vector.copy()

    def set_eval(self) -> None:
        # Walking every module tree per call is measurable on the
        # per-frame hot path; skip subtrees whose root is already in
        # eval mode (train()/eval() always toggle whole subtrees).
        for stem in self.stems.values():
            if stem.training:
                stem.eval()
        for branch in self.branches.values():
            if branch.training:
                branch.eval()

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def stem_features(
        self, samples: list[Sample], sensors: tuple[str, ...] | None = None
    ) -> dict[str, Tensor]:
        """Stem outputs per sensor for a batch of samples (eval mode)."""
        sensors = sensors or SENSORS
        self.set_eval()
        normalized = [normalize_sample(s) for s in samples]
        features: dict[str, Tensor] = {}
        with no_grad():
            for sensor in sensors:
                batch = np.stack([n[sensor] for n in normalized]).astype(np.float32)
                stem = self.stems[sensor]
                # copy=True: callers cache row slices of stem outputs
                # across windows, so they must not alias engine buffers.
                compiled = engine.maybe_run(
                    "stem", stem, stem, (batch,), copy=True
                )
                features[sensor] = (
                    stem(Tensor(batch)) if compiled is None
                    else Tensor(compiled[0])
                )
        return features

    def stem_features_cached(
        self,
        samples: list[Sample],
        sensors: tuple[str, ...] | None,
        cache: BranchOutputCache | None,
    ) -> dict[str, Tensor]:
        """Stem outputs with per-(sample, sensor) memoization.

        Stems are policy-independent, so a sweep revisiting the same
        frames under several policies recomputes identical rows; the
        cache makes the repeats free.  Rows are stored from (and
        assembled back into) batch-invariant computations, so cached
        and fresh rows are interchangeable bit for bit.
        """
        if cache is None or not cache.memoize_outputs:
            return self.stem_features(samples, sensors)
        sensors = sensors or SENSORS
        rows: dict[str, list[np.ndarray | None]] = {
            sensor: [cache.get_stem(s, sensor) for s in samples]
            for sensor in sensors
        }
        # Group misses by which sensors each sample actually lacks, so a
        # sample cached for some sensors never re-runs those stems.
        need: dict[tuple[str, ...], list[int]] = {}
        for i in range(len(samples)):
            missed = tuple(s for s in sensors if rows[s][i] is None)
            if missed:
                need.setdefault(missed, []).append(i)
        for missed, indices in need.items():
            computed = self.stem_features([samples[i] for i in indices], missed)
            for sensor in missed:
                data = computed[sensor].data
                for j, i in enumerate(indices):
                    row = data[j : j + 1]
                    rows[sensor][i] = row
                    cache.put_stem(samples[i], sensor, row)
        return {
            sensor: Tensor(np.concatenate(rows[sensor], axis=0))
            for sensor in sensors
        }

    def gate_features(self, features: dict[str, Tensor]) -> Tensor:
        """Channel-concatenation of all stem outputs, in SENSORS order."""
        return Tensor.concatenate([features[s] for s in SENSORS], axis=1)

    # ------------------------------------------------------------------
    # Branch / configuration execution
    # ------------------------------------------------------------------
    def run_branch(
        self, branch_name: str, features: dict[str, Tensor]
    ) -> list[Detections]:
        """Execute one branch on precomputed stem features."""
        from ..fusion.early import concat_stem_features

        spec = BRANCHES[branch_name]
        stem_input = concat_stem_features(features, spec.sensors)
        return self.branches[branch_name].detect(stem_input)

    def branch_outputs(
        self,
        samples: list[Sample],
        branch_names: tuple[str, ...],
        features: dict[str, Tensor] | None = None,
        cache: BranchOutputCache | None = None,
    ) -> dict[str, list[Detections]]:
        """Detections of each requested branch for every sample."""
        results: dict[str, list[Detections]] = {}
        pending = list(branch_names)
        if cache is not None:
            for name in list(pending):
                hits = [cache.get(s, name) for s in samples]
                if all(h is not None for h in hits):
                    results[name] = hits  # type: ignore[assignment]
                    pending.remove(name)
        if pending:
            if features is None:
                needed = tuple(
                    sorted({s for b in pending for s in BRANCHES[b].sensors})
                )
                features = self.stem_features(samples, needed)
            for name in pending:
                dets = self.run_branch(name, features)
                results[name] = dets
                if cache is not None:
                    for sample, det in zip(samples, dets):
                        cache.put(sample, name, det)
        return results

    def branch_outputs_windowed(
        self,
        samples: list[Sample],
        branch_index: dict[str, list[int]],
        features: dict[str, Tensor] | None = None,
        cache: BranchOutputCache | None = None,
    ) -> dict[str, dict[int, Detections]]:
        """Batched branch execution over a lookahead window.

        ``branch_index`` maps each branch name to the positions (into
        ``samples``) whose chosen configuration needs it; each branch
        then runs once on the gathered sub-batch instead of per frame.
        Per-row results are bit-identical to frame-by-frame execution:
        convolutions run under :class:`~repro.nn.functional.batch_invariant`
        (one GEMM per sample) and the RPN/ROI stages operate per image,
        so the batched runner reproduces sequential traces exactly
        (pinned by the equivalence tests).  Cache hits are resolved per
        sample, and only the misses are gathered and executed.
        """
        with batch_invariant():
            return self._branch_outputs_windowed(
                samples, branch_index, features, cache
            )

    def _branch_outputs_windowed(
        self,
        samples: list[Sample],
        branch_index: dict[str, list[int]],
        features: dict[str, Tensor] | None = None,
        cache: BranchOutputCache | None = None,
    ) -> dict[str, dict[int, Detections]]:
        results: dict[str, dict[int, Detections]] = {b: {} for b in branch_index}
        missing: dict[str, list[int]] = {}
        for branch, positions in branch_index.items():
            for i in positions:
                hit = cache.get(samples[i], branch) if cache is not None else None
                if hit is not None:
                    results[branch][i] = hit
                else:
                    missing.setdefault(branch, []).append(i)
        if not missing:
            return results

        if features is None:
            # Stems are per-sensor and per-row independent: compute them
            # once for the union of missed frames and sensors.
            rows = sorted({i for positions in missing.values() for i in positions})
            sensors = tuple(
                sorted({s for b in missing for s in BRANCHES[b].sensors})
            )
            features = self.stem_features_cached(
                [samples[i] for i in rows], sensors, cache
            )
            row_of = {i: r for r, i in enumerate(rows)}
            gather = lambda positions: np.array(  # noqa: E731
                [row_of[i] for i in positions]
            )
        else:
            gather = lambda positions: np.array(positions)  # noqa: E731

        for branch, positions in missing.items():
            index = gather(positions)
            sub = {s: features[s][index] for s in BRANCHES[branch].sensors}
            detections = self.run_branch(branch, sub)
            for i, det in zip(positions, detections):
                results[branch][i] = det
                if cache is not None:
                    cache.put(samples[i], branch, det)
        return results

    def fuse_config(
        self, config: ModelConfiguration, per_branch: dict[str, list[Detections]], index: int
    ) -> Detections:
        """Late-fuse one sample's branch outputs for ``config``."""
        return self.fuse_single(
            config, {b: per_branch[b][index] for b in config.branches}
        )

    def fuse_single(
        self, config: ModelConfiguration, det_by_branch: dict[str, Detections]
    ) -> Detections:
        """Late-fuse one frame given its per-branch detections."""
        outputs = [
            BranchOutput(
                branch_name=b,
                detections=det_by_branch[b],
                frame_sensor=BRANCHES[b].frame_sensor,
            )
            for b in config.branches
        ]
        return self.fusion_block.fuse(outputs)

    def run_config(
        self,
        config: ModelConfiguration,
        samples: list[Sample],
        cache: BranchOutputCache | None = None,
    ) -> list[Detections]:
        """Execute a fixed configuration as a static pipeline."""
        per_branch = self.branch_outputs(samples, config.branches, cache=cache)
        return [self.fuse_config(config, per_branch, i) for i in range(len(samples))]

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def infer(
        self,
        samples: list[Sample],
        gate: Gate,
        lambda_e: float = 0.01,
        gamma: float = 0.5,
        cache: BranchOutputCache | None = None,
        interpretation: str = "intended",
    ) -> list[EcoFusionResult]:
        """Adaptive inference over a batch of samples (Algorithm 1)."""
        features = self.stem_features(samples)  # lines 2-3: all stems run
        contexts = [s.context for s in samples]
        sample_ids = [s.sample_id for s in samples]

        chosen_configs: list[ModelConfiguration] = []
        selections: list[SelectionResult | None] = []
        if gate.bypasses_optimization:
            names = gate.select_direct(contexts)
            chosen_configs = [self.config_named(n) for n in names]
            selections = [None] * len(samples)
        else:
            gate_input = self.gate_features(features)
            predicted = gate.predict_losses(gate_input, contexts, sample_ids)  # line 4
            for i in range(len(samples)):
                selection = select_configuration(  # lines 5-8
                    predicted[i], self._energy_vector, lambda_e, gamma, interpretation
                )
                selections.append(selection)
                chosen_configs.append(self.library[selection.index])

        # Lines 9-10: execute each selected branch once per needing sample.
        needed_branches = tuple(sorted({b for c in chosen_configs for b in c.branches}))
        per_branch = self.branch_outputs(samples, needed_branches, features, cache)

        results: list[EcoFusionResult] = []
        for i, (sample, config) in enumerate(zip(samples, chosen_configs)):
            fused = self.fuse_config(config, per_branch, i)  # line 11
            latency, energy = self.costs.ecofusion_runtime(config)
            results.append(
                EcoFusionResult(
                    sample_id=sample.sample_id,
                    context=sample.context,
                    detections=fused,
                    config_name=config.name,
                    selection=selections[i],
                    latency_ms=latency,
                    energy_joules=energy,
                    static_energy_joules=self.costs.config_costs[config.name].energy_joules,
                )
            )
        return results
