"""Branch specifications and the model-configuration library Phi.

Sec. 4.3: "we implement one branch for each input sensor and three early
fusion branches that fuse both homogeneous and heterogeneous sets of
sensors.  Using the gate to select the branches, our model can dynamically
choose between no fusion, early fusion, late fusion, and combinations of
the three."

A **branch** is one Faster R-CNN detector (single-sensor or early-fusion).
A **configuration** ``phi`` is a non-empty set of branches whose outputs
are late-fused.  ``Phi`` — the library the gate scores — is the curated
list built by :func:`build_config_library`; it contains every baseline the
paper reports (single sensors, early fusion, late fusion) plus the mixed
early/late combinations EcoFusion may select.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BranchSpec",
    "BRANCHES",
    "BRANCH_NAMES",
    "ModelConfiguration",
    "build_config_library",
    "config_by_name",
    "BASELINE_CONFIGS",
]


@dataclass(frozen=True)
class BranchSpec:
    """One detector branch: its name and the stems it consumes."""

    name: str
    sensors: tuple[str, ...]

    @property
    def is_early_fusion(self) -> bool:
        return len(self.sensors) > 1

    @property
    def frame_sensor(self) -> str:
        """Coordinate frame of the branch's detections.

        Single-sensor branches detect in their sensor's frame; early-fusion
        branches are trained against canonical-frame labels (the fused
        feature map has no single native frame), i.e. the right camera.
        """
        return self.sensors[0] if len(self.sensors) == 1 else "camera_right"


# The seven branches of Sec. 4.3: four single-sensor + three early-fusion
# (homogeneous stereo pair, heterogeneous camera+lidar, heterogeneous
# lidar+radar).
BRANCHES: dict[str, BranchSpec] = {
    "B_CL": BranchSpec("B_CL", ("camera_left",)),
    "B_CR": BranchSpec("B_CR", ("camera_right",)),
    "B_R": BranchSpec("B_R", ("radar",)),
    "B_L": BranchSpec("B_L", ("lidar",)),
    "B_CLCR": BranchSpec("B_CLCR", ("camera_left", "camera_right")),
    "B_CLCRL": BranchSpec("B_CLCRL", ("camera_left", "camera_right", "lidar")),
    "B_LR": BranchSpec("B_LR", ("lidar", "radar")),
}
BRANCH_NAMES: tuple[str, ...] = tuple(BRANCHES)


@dataclass(frozen=True)
class ModelConfiguration:
    """A configuration phi: an ensemble of branches, late-fused."""

    name: str
    branches: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValueError(f"configuration '{self.name}' has no branches")
        unknown = [b for b in self.branches if b not in BRANCHES]
        if unknown:
            raise ValueError(f"configuration '{self.name}' references unknown branches {unknown}")

    @property
    def sensors(self) -> tuple[str, ...]:
        """All sensors any branch of this configuration consumes (sorted)."""
        used: set[str] = set()
        for b in self.branches:
            used.update(BRANCHES[b].sensors)
        return tuple(sorted(used))

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    @property
    def fusion_kind(self) -> str:
        """'none' | 'early' | 'late' | 'mixed' — for reporting."""
        multi = len(self.branches) > 1
        early = any(BRANCHES[b].is_early_fusion for b in self.branches)
        if multi and early:
            return "mixed"
        if multi:
            return "late"
        if early:
            return "early"
        return "none"


def build_config_library() -> list[ModelConfiguration]:
    """The configuration library Phi (13 entries).

    Ordered cheap-to-expensive-ish; the order is part of the public
    contract (gate outputs index into it).
    """
    return [
        # --- no fusion: one single-sensor branch -----------------------
        ModelConfiguration("CL", ("B_CL",)),
        ModelConfiguration("CR", ("B_CR",)),
        ModelConfiguration("R", ("B_R",)),
        ModelConfiguration("L", ("B_L",)),
        # --- early fusion: one multi-sensor branch ---------------------
        ModelConfiguration("EF_CLCR", ("B_CLCR",)),
        ModelConfiguration("EF_LR", ("B_LR",)),
        ModelConfiguration("EF_CLCRL", ("B_CLCRL",)),  # paper's early baseline
        # --- late fusion: several single-sensor branches ---------------
        ModelConfiguration("LF_CLCR", ("B_CL", "B_CR")),
        ModelConfiguration("LF_CR_L", ("B_CR", "B_L")),
        ModelConfiguration("LF_LR", ("B_L", "B_R")),
        ModelConfiguration("LF_ALL", ("B_CL", "B_CR", "B_R", "B_L")),  # late baseline
        # --- mixed early + late ----------------------------------------
        ModelConfiguration("MIX_NIGHT", ("B_L", "B_R", "B_LR")),
        # Maximum-redundancy configuration for the hardest weather: both
        # heterogeneous early-fusion branches plus late lidar and radar.
        # Costs more than plain late fusion — the source of Table 3's
        # negative clock-gating savings in fog/snow.
        ModelConfiguration("MIX_HEAVY", ("B_CLCRL", "B_LR", "B_L", "B_R")),
    ]


# Names of the paper's three baseline rows in Table 1.
BASELINE_CONFIGS: dict[str, str] = {
    "none_camera_left": "CL",
    "none_camera_right": "CR",
    "none_radar": "R",
    "none_lidar": "L",
    "early": "EF_CLCRL",
    "late": "LF_ALL",
}


def config_by_name(library: list[ModelConfiguration], name: str) -> ModelConfiguration:
    """Find a configuration in ``library`` by name (KeyError if absent)."""
    for config in library:
        if config.name == name:
            return config
    raise KeyError(f"no configuration named '{name}' in library: {[c.name for c in library]}")
