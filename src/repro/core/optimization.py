"""Joint energy-performance optimization (paper Sec. 3.3, Eq. 7-9).

Given per-configuration predicted fusion losses ``L_f(phi)`` and the
offline energy table ``E(phi)``:

1. :func:`candidate_set` implements ``rho`` (Eq. 7): configurations whose
   predicted loss is within ``gamma`` of the best configuration ``phi'``.
2. :func:`joint_loss` implements Eq. 8:
   ``L_joint(phi) = (1 - lambda_E) * L_f(phi) + lambda_E * E(phi)``.
3. :func:`select_configuration` implements Eq. 9: the ``argmin`` of
   ``L_joint`` over the candidate set.

Note on Eq. 7: as printed the predicate is
``L_f(phi) - L_f(phi') <= L_f(phi') + gamma``.  Read literally the margin
would widen with the best loss itself; the evident intent (and the
behaviour described in the surrounding text — "maximum allowable
difference in loss") is ``L_f(phi) <= L_f(phi') + gamma``.  Both
interpretations are implemented; ``"intended"`` is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["candidate_set", "joint_loss", "select_configuration", "SelectionResult"]


def candidate_set(
    losses: np.ndarray,
    gamma: float,
    interpretation: str = "intended",
) -> np.ndarray:
    """Boolean mask of configurations in ``Phi*`` (Eq. 7).

    Parameters
    ----------
    losses:
        ``(|Phi|,)`` predicted fusion losses.
    gamma:
        Maximum allowed loss excess over the best configuration; ``0``
        keeps only the (tied) best.
    interpretation:
        ``"intended"`` -> ``L_f(phi) <= L_f(phi') + gamma`` or
        ``"literal"`` -> ``L_f(phi) - L_f(phi') <= L_f(phi') + gamma``.
    """
    losses = np.asarray(losses, dtype=np.float64).reshape(-1)
    if losses.size == 0:
        raise ValueError("empty loss vector")
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    best = float(losses.min())
    if interpretation == "intended":
        mask = losses <= best + gamma
    elif interpretation == "literal":
        mask = (losses - best) <= best + gamma
    else:
        raise ValueError(f"unknown interpretation '{interpretation}'")
    mask = np.asarray(mask)
    mask[losses.argmin()] = True  # phi' is always a candidate
    return mask


def joint_loss(
    losses: np.ndarray, energies: np.ndarray, lambda_e: float
) -> np.ndarray:
    """Eq. 8: ``(1 - lambda_E) * L_f + lambda_E * E`` elementwise."""
    if not 0.0 <= lambda_e <= 1.0:
        raise ValueError(f"lambda_E must be in [0, 1], got {lambda_e}")
    losses = np.asarray(losses, dtype=np.float64).reshape(-1)
    energies = np.asarray(energies, dtype=np.float64).reshape(-1)
    if losses.shape != energies.shape:
        raise ValueError(
            f"losses {losses.shape} and energies {energies.shape} must align"
        )
    return (1.0 - lambda_e) * losses + lambda_e * energies


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the joint optimization for one input."""

    index: int
    candidate_mask: np.ndarray
    joint_values: np.ndarray
    predicted_losses: np.ndarray
    energies: np.ndarray

    @property
    def num_candidates(self) -> int:
        return int(self.candidate_mask.sum())


def select_configuration(
    losses: np.ndarray,
    energies: np.ndarray,
    lambda_e: float,
    gamma: float,
    interpretation: str = "intended",
) -> SelectionResult:
    """Eq. 9: argmin of the joint loss over the candidate set.

    Ties break toward lower energy (then lower index) — deterministic and
    aligned with the optimization's purpose.
    """
    losses = np.asarray(losses, dtype=np.float64).reshape(-1)
    energies = np.asarray(energies, dtype=np.float64).reshape(-1)
    mask = candidate_set(losses, gamma, interpretation)
    joint = joint_loss(losses, energies, lambda_e)
    masked = np.where(mask, joint, np.inf)
    best_value = masked.min()
    tied = np.flatnonzero(np.isclose(masked, best_value))
    index = int(tied[np.argmin(energies[tied])])
    return SelectionResult(
        index=index,
        candidate_mask=mask,
        joint_values=joint,
        predicted_losses=losses,
        energies=energies,
    )
