"""Temporal context gating and sensor duty-cycle planning.

Implements the paper's proposed extension (Sec. 5.5.2): "Temporal
modeling can enable the context to be estimated across time instead of
for a single input, allowing clock gating for specific periods."

Three cooperating pieces:

* :class:`TemporalGate` — wraps any base gate and exponentially smooths
  its per-configuration loss predictions over time.  Smoothing removes
  single-frame prediction noise (the winner's-curse flicker of a
  memoryless argmin) at the cost of a bounded reaction delay when the
  context genuinely changes.
* :class:`HysteresisPolicy` — switches configurations only when the new
  candidate's joint loss undercuts the incumbent's by a margin, bounding
  config-thrash (every switch re-engages different TensorRT engines).
* :class:`SensorDutyCycle` — turns the config timeline into per-sensor
  power states with a hold time: a sensor stays measurement-on for
  ``hold_frames`` after its last use, so brief config flickers never
  bounce sensor clock gates (spinning sensors must not be power-cycled,
  Sec. 5.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.sensors import SENSORS
from ..nn import Tensor
from .config import ModelConfiguration
from .gating.base import Gate
from .optimization import select_configuration

__all__ = ["TemporalGate", "HysteresisPolicy", "SensorDutyCycle", "TemporalResult"]


class TemporalGate(Gate):
    """Exponential smoothing over a base gate's loss predictions.

    ``smoothed_t = alpha * raw_t + (1 - alpha) * smoothed_{t-1}``;
    ``alpha = 1`` recovers the memoryless base gate.  Designed for
    single-stream (batch of one) sequential inference; call
    :meth:`reset` between sequences.
    """

    bypasses_optimization = False

    def __init__(self, base: Gate, alpha: float = 0.4) -> None:
        if base.bypasses_optimization:
            raise ValueError(
                "temporal smoothing needs loss estimates; the knowledge gate "
                "selects directly and has none"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.base = base
        self.alpha = float(alpha)
        self.name = f"temporal[{base.name}]"
        self._state: np.ndarray | None = None

    def reset(self) -> None:
        """Forget history (call at sequence boundaries)."""
        self._state = None

    def state_dict(self) -> dict:
        """Snapshot the EMA state for drive checkpointing."""
        state = None if self._state is None else self._state.copy()
        return {"state": state}

    def load_state_dict(self, state: dict) -> None:
        saved = state["state"]
        self._state = None if saved is None else np.array(saved, copy=True)

    def predict_losses(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        raw = self.base.predict_losses(gate_features, contexts, sample_ids)
        return self.smooth(raw)

    def predict_losses_windowed(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        raw = self.base.predict_losses_windowed(gate_features, contexts, sample_ids)
        return self.smooth(raw)

    def smooth(self, raw: np.ndarray) -> np.ndarray:
        """Advance the smoother over ``raw``'s rows, in order.

        Public because the serving layer batches the *base* gate across
        streams and then applies each stream's smoother to its own row;
        a one-row call performs exactly one state update, so row-wise
        application is bit-identical to smoothing the rows together.
        """
        out = np.empty_like(raw)
        for i in range(raw.shape[0]):  # frames arrive in order
            if self._state is None:
                self._state = raw[i].copy()
            else:
                self._state = self.alpha * raw[i] + (1 - self.alpha) * self._state
            out[i] = self._state
        return out


class HysteresisPolicy:
    """Keep the incumbent configuration unless a challenger clearly wins.

    A switch happens only when ``joint(challenger) + margin <
    joint(incumbent)``; equal-quality alternatives never cause thrash.
    """

    def __init__(self, margin: float = 0.05) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = float(margin)
        self._incumbent: int | None = None
        self.switch_count = 0

    def reset(self) -> None:
        self._incumbent = None
        self.switch_count = 0

    def state_dict(self) -> dict:
        return {
            "incumbent": self._incumbent,
            "switch_count": self.switch_count,
        }

    def load_state_dict(self, state: dict) -> None:
        incumbent = state["incumbent"]
        self._incumbent = None if incumbent is None else int(incumbent)
        self.switch_count = int(state["switch_count"])

    def choose(self, losses: np.ndarray, energies: np.ndarray,
               lambda_e: float, gamma: float) -> int:
        """Index of the configuration to execute this frame."""
        selection = select_configuration(losses, energies, lambda_e, gamma)
        challenger = selection.index
        if self._incumbent is None:
            self._incumbent = challenger
            return challenger
        if challenger == self._incumbent:
            return self._incumbent
        joint = selection.joint_values
        incumbent_value = joint[self._incumbent]
        # The incumbent may have fallen out of the candidate set (its
        # predicted loss drifted); force a switch in that case.
        incumbent_valid = bool(selection.candidate_mask[self._incumbent])
        if not incumbent_valid or joint[challenger] + self.margin < incumbent_value:
            self._incumbent = challenger
            self.switch_count += 1
        return self._incumbent


@dataclass
class SensorPowerTimeline:
    """Per-frame power state of every sensor (True = measuring)."""

    states: list[dict[str, bool]] = field(default_factory=list)

    def duty_cycle(self, sensor: str) -> float:
        """Fraction of frames the sensor spent measurement-on."""
        if not self.states:
            return 0.0
        on = sum(1 for s in self.states if s[sensor])
        return on / len(self.states)


class SensorDutyCycle:
    """Hold-time clock-gating planner over a configuration timeline.

    A sensor is measurement-on while any recent configuration (within
    ``hold_frames``) needed it.  The hold prevents rapid power cycling
    when the gate briefly flickers between configurations.
    """

    def __init__(self, hold_frames: int = 4) -> None:
        if hold_frames < 1:
            raise ValueError("hold_frames must be >= 1")
        self.hold_frames = int(hold_frames)
        self._last_used: dict[str, int] = {s: -(10**9) for s in SENSORS}
        self._clock = -1

    def reset(self) -> None:
        self._last_used = {s: -(10**9) for s in SENSORS}
        self._clock = -1

    def state_dict(self) -> dict:
        return {"last_used": dict(self._last_used), "clock": self._clock}

    def load_state_dict(self, state: dict) -> None:
        self._last_used = {s: int(t) for s, t in state["last_used"].items()}
        self._clock = int(state["clock"])

    def step(
        self,
        config: ModelConfiguration,
        offline: tuple[str, ...] = (),
    ) -> dict[str, bool]:
        """Advance one frame; returns sensor -> measuring.

        ``offline`` names sensors the vehicle's health monitor has marked
        failed (see ``repro.simulation``): their measurement electronics
        are clock-gated immediately — no hold time — since a dead sensor
        draws power without producing data.  They also don't refresh their
        hold window, so they stay gated until they recover *and* a
        configuration uses them again.
        """
        self._clock += 1
        down = set(offline)
        for sensor in down:
            # Failing wipes the hold window too: after recovery the sensor
            # stays gated until a configuration actually consumes it.
            self._last_used[sensor] = -(10**9)
        for sensor in config.sensors:
            if sensor not in down:
                self._last_used[sensor] = self._clock
        return {
            sensor: sensor not in down
            and (self._clock - self._last_used[sensor]) < self.hold_frames
            for sensor in SENSORS
        }


@dataclass
class TemporalResult:
    """Outcome of a temporally-gated sequence run."""

    config_names: list[str]
    switch_count: int
    power_timeline: SensorPowerTimeline
    energies: list[float]

    @property
    def avg_energy_joules(self) -> float:
        return float(np.mean(self.energies)) if self.energies else 0.0

    @property
    def switches_per_frame(self) -> float:
        return self.switch_count / max(len(self.config_names), 1)


def run_sequence(
    model,
    gate: Gate,
    sequence,
    lambda_e: float = 0.05,
    gamma: float = 0.5,
    hysteresis_margin: float = 0.05,
    hold_frames: int = 4,
) -> TemporalResult:
    """Temporally-gated inference over a :class:`DrivingSequence`.

    Per frame: stems -> (smoothed) gate -> hysteresis selection -> sensor
    duty-cycle update -> combined platform + sensor energy (Eq. 10-11
    with per-frame gating states).  ``gate`` is typically a
    :class:`TemporalGate`; a memoryless gate gives the no-smoothing
    baseline for the A3 ablation.
    """
    from ..hardware.sensors_power import sensor_energy

    if isinstance(gate, TemporalGate):
        gate.reset()
    policy = HysteresisPolicy(margin=hysteresis_margin)
    duty = SensorDutyCycle(hold_frames=hold_frames)
    timeline = SensorPowerTimeline()
    energies: list[float] = []
    config_names: list[str] = []
    energy_vector = model.energies()

    for frame in sequence:
        sample = frame.sample
        features = model.stem_features([sample])
        gate_input = model.gate_features(features)
        losses = gate.predict_losses(
            gate_input, [sample.context], [sample.sample_id]
        )[0]
        index = policy.choose(losses, energy_vector, lambda_e, gamma)
        config = model.library[index]
        config_names.append(config.name)
        power_state = duty.step(config)
        timeline.states.append(power_state)
        _, platform_energy = model.costs.ecofusion_runtime(config)
        sensors_energy = sum(
            sensor_energy(sensor, gated=not measuring)
            for sensor, measuring in power_state.items()
        )
        energies.append(platform_energy + sensors_energy)

    return TemporalResult(
        config_names=config_names,
        switch_count=policy.switch_count,
        power_timeline=timeline,
        energies=energies,
    )
