"""Two-phase training (paper Sec. 5).

Phase 1 — perception: "we train our model with all of the stems and
branches enabled using supervised learning."  Every iteration runs all
stems and all seven branches on a minibatch; gradients from every branch
flow into the shared stems.

Phase 2 — gate: "we take the trained stem and branch outputs and use them
to separately train the gate model to select the branches that produce
the lowest loss for a given stem output."  Concretely: the per-sample
fusion loss of every configuration is computed offline (the loss table),
then the Deep/Attention gate networks regress that table from frozen stem
features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.radiate import Sample
from ..datasets.splits import Subset
from ..datasets.transforms import horizontal_flip, normalize_sensor
from ..fusion.coordinates import from_canonical
from ..fusion.early import concat_stem_features
from ..nn import Adam, CosineLR, Tensor, clip_grad_norm, smooth_l1
from ..perception.detector import BranchDetector
from ..perception.backbone import StemBlock
from .config import BRANCHES, ModelConfiguration
from .ecofusion import BranchOutputCache, EcoFusionModel
from .gating.deep import DeepGate

__all__ = [
    "TrainingConfig",
    "train_perception",
    "compute_loss_table",
    "gate_feature_matrix",
    "train_gate",
]


@dataclass
class TrainingConfig:
    """Hyperparameters for both training phases."""

    iterations: int = 220
    batch_size: int = 6
    learning_rate: float = 2.0e-3
    weight_decay: float = 1.0e-4
    grad_clip: float = 5.0
    augment: bool = True
    gate_iterations: int = 600
    gate_batch_size: int = 16
    gate_learning_rate: float = 1.0e-3
    gate_weight_decay: float = 1.0e-2
    gate_shrink: float = 0.5
    seed: int = 0
    log_every: int = 50
    verbose: bool = False


def _branch_ground_truth(
    sample_boxes: np.ndarray, frame_sensor: str
) -> np.ndarray:
    """Canonical ground truth expressed in a branch's detection frame."""
    if len(sample_boxes) == 0:
        return sample_boxes
    return from_canonical(sample_boxes, frame_sensor)


def train_perception(
    stems: dict[str, StemBlock],
    branches: dict[str, BranchDetector],
    train_split: Subset,
    config: TrainingConfig,
) -> list[float]:
    """Phase 1: joint supervised training of all stems and branches.

    Returns the per-iteration total-loss history (useful for convergence
    tests and the quickstart example's learning curve).
    """
    rng = np.random.default_rng(config.seed)
    params = []
    for stem in stems.values():
        stem.train()
        params.extend(stem.parameters())
    for branch in branches.values():
        branch.train()
        params.extend(branch.parameters())
    optimizer = Adam(params, lr=config.learning_rate, weight_decay=config.weight_decay)
    # Cosine decay to 10% of base lr sharpens classification late in training.
    scheduler = CosineLR(optimizer, total=config.iterations,
                         min_lr=0.1 * config.learning_rate)

    image_size = train_split.dataset.image_size
    history: list[float] = []
    n = len(train_split)
    for iteration in range(config.iterations):
        idxs = rng.choice(n, size=min(config.batch_size, n), replace=False)
        batch: list[Sample] = [train_split[int(i)] for i in idxs]
        # Normalize (and maybe flip) every sensor of every sample.
        sensors_batch: list[dict[str, np.ndarray]] = []
        boxes_batch: list[np.ndarray] = []
        labels_batch: list[np.ndarray] = []
        for sample in batch:
            tensors = {
                name: normalize_sensor(name, arr)
                for name, arr in sample.sensors.items()
            }
            boxes = sample.boxes
            if config.augment and rng.random() < 0.5:
                tensors, boxes = horizontal_flip(tensors, boxes, image_size)
            sensors_batch.append(tensors)
            boxes_batch.append(boxes)
            labels_batch.append(sample.labels)

        stem_out: dict[str, Tensor] = {}
        for sensor, stem in stems.items():
            stacked = np.stack([s[sensor] for s in sensors_batch]).astype(np.float32)
            stem_out[sensor] = stem(Tensor(stacked))

        total = None
        for name, branch in branches.items():
            spec = BRANCHES[name]
            stem_input = concat_stem_features(stem_out, spec.sensors)
            gt_boxes = [_branch_ground_truth(b, spec.frame_sensor) for b in boxes_batch]
            losses = branch.compute_loss(stem_input, gt_boxes, labels_batch, rng)
            total = losses.total if total is None else total + losses.total
        total = total * (1.0 / len(branches))

        optimizer.zero_grad()
        total.backward()
        clip_grad_norm(params, config.grad_clip)
        optimizer.step()
        scheduler.step()
        history.append(total.item())
        if config.verbose and (iteration + 1) % config.log_every == 0:
            recent = float(np.mean(history[-config.log_every :]))
            print(f"[perception] iter {iteration + 1}/{config.iterations} loss {recent:.3f}")
    return history


def compute_loss_table(
    model: EcoFusionModel,
    split: Subset,
    fusion_loss_fn,
    cache: BranchOutputCache | None = None,
    batch_size: int = 16,
) -> np.ndarray:
    """Per-sample, per-configuration fusion loss: the gate's target table.

    ``fusion_loss_fn(detections, gt_boxes, gt_labels) -> float`` is the
    loss metric (see ``repro.evaluation.loss_metrics.fusion_loss``).
    Every branch runs once per sample; each configuration then reuses the
    cached branch outputs through the fusion block.
    """
    cache = cache if cache is not None else BranchOutputCache()
    all_branches = tuple(BRANCHES)
    table = np.zeros((len(split), len(model.library)), dtype=np.float64)
    samples = list(split)
    for start in range(0, len(samples), batch_size):
        chunk = samples[start : start + batch_size]
        per_branch = model.branch_outputs(chunk, all_branches, cache=cache)
        for j, config in enumerate(model.library):
            for i, sample in enumerate(chunk):
                fused = model.fuse_config(config, per_branch, i)
                table[start + i, j] = fusion_loss_fn(fused, sample.boxes, sample.labels)
    return table


def gate_feature_matrix(model: EcoFusionModel, split: Subset,
                        batch_size: int = 16) -> np.ndarray:
    """Frozen-stem gate inputs for every sample: (N, 32, S/2, S/2)."""
    samples = list(split)
    chunks = []
    for start in range(0, len(samples), batch_size):
        batch = samples[start : start + batch_size]
        features = model.stem_features(batch)
        chunks.append(model.gate_features(features).data)
    return np.concatenate(chunks, axis=0)


def train_gate(
    gate: DeepGate,
    features: np.ndarray,
    loss_table: np.ndarray,
    config: TrainingConfig,
) -> list[float]:
    """Phase 2: regress the loss table from frozen stem features.

    Smooth-L1 regression keeps the occasional catastrophic configuration
    loss (a config that misses everything in fog) from dominating the
    gradient while still ranking configurations correctly.
    """
    if features.shape[0] != loss_table.shape[0]:
        raise ValueError(
            f"features ({features.shape[0]}) and loss table ({loss_table.shape[0]}) disagree"
        )
    rng = np.random.default_rng(config.seed + 1)
    network = gate.network
    network.train()
    optimizer = Adam(
        list(network.parameters()),
        lr=config.gate_learning_rate,
        weight_decay=config.gate_weight_decay,
    )
    n = features.shape[0]
    history: list[float] = []
    for iteration in range(config.gate_iterations):
        idx = rng.choice(n, size=min(config.gate_batch_size, n), replace=False)
        x = Tensor(features[idx])
        target = loss_table[idx].astype(np.float32)
        predicted = network(x)
        loss = smooth_l1(predicted, target, beta=0.5)
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(list(network.parameters()), config.grad_clip)
        optimizer.step()
        history.append(loss.item())
        if config.verbose and (iteration + 1) % config.log_every == 0:
            recent = float(np.mean(history[-config.log_every :]))
            print(f"[gate:{gate.name}] iter {iteration + 1}/{config.gate_iterations} "
                  f"loss {recent:.3f}")
    network.eval()
    # Calibrate: shrink per-sample predictions toward the train-mean prior
    # (see DeepGate docstring for the variance-reduction rationale).
    gate.set_prior(loss_table.mean(axis=0), shrink=config.gate_shrink)
    return history
