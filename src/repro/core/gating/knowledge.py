"""Knowledge gating (paper Sec. 4.2.1).

Uses domain knowledge about per-modality performance in each driving
condition to statically map an externally-identified context (weather
feed, GPS, time of day) to a configuration.  Not tunable by lambda_E, and
limited to the finite set of encoded contexts — both limitations the
paper calls out and Table 2 demonstrates.

The table below encodes the modality knowledge the simulator (and the
real world) obey:

* clear urban scenes: cameras + lidar early fusion, radar adds little;
* junctions/motorways (clear, structured): the stereo pair suffices;
* night: cameras are blind, lean on lidar + radar;
* rain: everything degrades somewhat -> full late fusion for robustness;
* fog/snow: cameras and lidar both suffer -> heavy mixed config that
  keeps radar plus redundant lidar/camera paths;
* rural (clear, sparse): late-fused stereo pair.
"""

from __future__ import annotations

import numpy as np

from ...nn import Tensor
from ..config import ModelConfiguration, config_by_name
from .base import Gate

__all__ = ["KnowledgeGate", "KNOWLEDGE_TABLE"]

KNOWLEDGE_TABLE: dict[str, str] = {
    "city": "EF_CLCRL",
    "fog": "MIX_HEAVY",
    "junction": "EF_CLCR",
    "motorway": "EF_CLCR",
    "night": "MIX_NIGHT",
    "rain": "LF_ALL",
    "rural": "LF_CLCR",
    "snow": "MIX_HEAVY",
}

# Loss placeholder for non-selected configurations (the knowledge gate
# asserts its choice rather than scoring alternatives).
_REJECTED_LOSS = 1.0e3


class KnowledgeGate(Gate):
    """Static context -> configuration lookup."""

    name = "knowledge"
    bypasses_optimization = True

    def __init__(
        self,
        library: list[ModelConfiguration],
        table: dict[str, str] | None = None,
    ) -> None:
        self.library = library
        self.table = dict(table or KNOWLEDGE_TABLE)
        for context, config_name in self.table.items():
            config_by_name(library, config_name)  # validate at construction

    def select_direct(self, contexts: list[str]) -> list[str]:
        missing = [c for c in contexts if c not in self.table]
        if missing:
            raise KeyError(
                f"knowledge gate has no rule for contexts {sorted(set(missing))}; "
                "static tables cannot generalize (Sec. 4.2.1)"
            )
        return [self.table[c] for c in contexts]

    def predict_losses(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        """Loss vector surrogate: 0 at the chosen config, large elsewhere."""
        if contexts is None:
            raise ValueError("knowledge gating requires externally-identified contexts")
        chosen = self.select_direct(contexts)
        names = [c.name for c in self.library]
        out = np.full((len(contexts), len(names)), _REJECTED_LOSS, dtype=np.float64)
        for i, name in enumerate(chosen):
            out[i, names.index(name)] = 0.0
        return out
