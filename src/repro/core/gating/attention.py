"""Attention gating (paper Sec. 4.2.3).

"Identical to the Deep Gating model, except for the addition of a
self-attention layer to enable the gate to identify important areas of
the input feature map."  The attention layer sits after the second conv
block, where the 8x8 map gives 64 spatial tokens.
"""

from __future__ import annotations

import numpy as np

from ...nn import SpatialSelfAttention
from .deep import DeepGate

__all__ = ["AttentionGate"]


def _attention_factory(channels: int, rng: np.random.Generator) -> SpatialSelfAttention:
    return SpatialSelfAttention(channels, rng=rng)


class AttentionGate(DeepGate):
    """Deep gate + spatial self-attention."""

    name = "attention"

    def __init__(self, num_configs: int, rng: np.random.Generator,
                 image_size: int = 64) -> None:
        super().__init__(
            num_configs, rng=rng, image_size=image_size,
            attention_factory=_attention_factory,
        )

    @property
    def last_attention_map(self) -> np.ndarray | None:
        """Attention weights from the most recent forward (for analysis)."""
        return self.network.extra.last_attention
