"""Deep gating (paper Sec. 4.2.2).

"This approach uses a deep-learning model with three CNN layers and one
MLP layer to predict the loss for each model configuration for a given
set of inputs."  The gate consumes the channel-concatenation of all stem
outputs and regresses one loss per configuration; it is trained after the
stems/branches are frozen (Sec. 5).
"""

from __future__ import annotations

import numpy as np

from ...nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    batch_invariant,
    engine,
    no_grad,
)
from ...nn.layers import MaxPool2d
from ..stems import GATE_INPUT_CHANNELS
from .base import Gate

__all__ = ["DeepGate", "GateNetwork"]


class GateNetwork(Module):
    """Three stride-2 conv blocks + one MLP head -> |Phi| loss estimates.

    ``attention_factory`` optionally inserts an extra layer after the
    second conv block (used by :class:`~.attention.AttentionGate`).
    Input: (N, 32, 32, 32) stem features; conv trunk reduces to (N, 16,
    4, 4) before the head.
    """

    def __init__(
        self,
        num_configs: int,
        rng: np.random.Generator,
        image_size: int = 64,
        attention_factory=None,
    ) -> None:
        super().__init__()
        self.num_configs = num_configs
        stem_hw = image_size // 2
        # Pooling first keeps the gate's compute a small fraction of a
        # branch's, preserving the paper's "negligible gate cost" property
        # (Sec. 5) at this repo's miniaturized scale.
        self.pool = MaxPool2d(2)
        self.conv1 = Sequential(
            Conv2d(GATE_INPUT_CHANNELS, 16, 3, stride=2, padding=1, bias=False, rng=rng),
            BatchNorm2d(16),
            ReLU(),
        )
        self.conv2 = Sequential(
            Conv2d(16, 16, 3, stride=2, padding=1, bias=False, rng=rng),
            BatchNorm2d(16),
            ReLU(),
        )
        # Assignment auto-registers the submodule when not None.
        self.extra = attention_factory(16, rng) if attention_factory else None
        self.conv3 = Sequential(
            Conv2d(16, 16, 3, stride=2, padding=1, bias=False, rng=rng),
            BatchNorm2d(16),
            ReLU(),
        )
        flat = 16 * (stem_hw // 16) * (stem_hw // 16)
        self.head = Sequential(Flatten(), Linear(flat, num_configs, rng=rng))

    def trunk(self, x: Tensor) -> Tensor:
        """Convolutional feature trunk (everything before the MLP head).

        Split out so batched callers can run the batch-invariant conv
        stack once over a whole window and apply the head frame-by-frame
        (the dense head is the only stage whose floating-point results
        depend on batch size through BLAS kernel selection).
        """
        out = self.conv2(self.conv1(self.pool(x)))
        if self.extra is not None:
            out = self.extra(out)
        return self.conv3(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.trunk(x))

    def compile(self, *shapes: tuple[int, ...],
                invariant: bool = False) -> list[engine.Program]:
        """Pre-compile the trunk for the given ``(N, C, H, W)`` input
        shapes; also happens lazily on first windowed use, so calling
        this is optional warm-up."""
        return engine.warm_up(
            "gate_trunk", self, self.trunk, shapes, invariant=invariant
        )


class DeepGate(Gate):
    """Learned loss-regression gate.

    Predictions are optionally *shrunk toward the training-set prior*
    (the per-configuration mean loss): with a small gate trained on a
    small split, raw per-sample regressions are noisy and the argmin
    selection suffers a winner's-curse bias toward whichever
    configuration is most underestimated.  Shrinkage
    ``L_hat = prior + shrink * (raw - prior)`` is a standard
    variance-reduction calibration; ``shrink=1`` recovers the raw
    regressor.  Install the prior with :meth:`set_prior` (done by
    ``repro.core.training.train_gate``).
    """

    name = "deep"

    def __init__(self, num_configs: int, rng: np.random.Generator,
                 image_size: int = 64, attention_factory=None) -> None:
        self.network = GateNetwork(
            num_configs, rng=rng, image_size=image_size,
            attention_factory=attention_factory,
        )
        self.prior: np.ndarray | None = None
        self.shrink: float = 1.0

    def set_prior(self, prior: np.ndarray, shrink: float = 0.5) -> None:
        """Install the per-config mean-loss prior and shrink factor."""
        prior = np.asarray(prior, dtype=np.float64).reshape(-1)
        if prior.shape[0] != self.network.num_configs:
            raise ValueError(
                f"prior length {prior.shape[0]} != num configs {self.network.num_configs}"
            )
        if not 0.0 <= shrink <= 1.0:
            raise ValueError("shrink must be in [0, 1]")
        self.prior = prior
        self.shrink = float(shrink)

    def predict_losses(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        self.network.eval()
        compiled = engine.maybe_run(
            "gate_forward", self.network, self.network, (gate_features,)
        )
        if compiled is not None:
            raw = compiled[0].astype(np.float64)
        else:
            with no_grad():
                out = self.network(gate_features)
            raw = out.data.astype(np.float64)
        if self.prior is None:
            return raw
        return self.prior[None, :] + self.shrink * (raw - self.prior[None, :])

    def predict_losses_windowed(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        """Window-batched prediction, bit-identical to per-frame calls.

        The full conv trunk — attention layer included — runs once for
        the whole window under ``batch_invariant`` (per-sample GEMMs
        over shared im2col buffers for the convs, per-sample stacked
        matmuls for the attention token projections and products); only
        the tiny MLP head is applied per frame, since a dense layer's
        floating-point results depend on batch size through BLAS kernel
        selection.  Every result is therefore identical to the
        sequential batch-of-one path by construction.
        """
        net = self.network
        net.eval()
        with no_grad(), batch_invariant():
            # copy=True: the trunk rows are sliced while the per-frame
            # head programs replay, which reclaims the engine's pool.
            compiled = engine.maybe_run(
                "gate_trunk", net, net.trunk, (gate_features,), copy=True
            )
            trunk = (
                net.trunk(gate_features) if compiled is None
                else Tensor(compiled[0])
            )
            rows = []
            for i in range(trunk.shape[0]):
                row = trunk[i : i + 1]
                head = engine.maybe_run(
                    "gate_head", net, net.head, (row,), copy=True
                )
                rows.append(head[0] if head is not None else net.head(row).data)
        raw = np.concatenate(rows, axis=0).astype(np.float64)
        if self.prior is None:
            return raw
        return self.prior[None, :] + self.shrink * (raw - self.prior[None, :])
