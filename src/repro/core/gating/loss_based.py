"""Loss-based gating (paper Sec. 4.2.4).

"The a posteriori ground-truth loss from each configuration for a given
input is used to select phi*.  Thus, this implementation is not
deployable in the real world but represents the theoretical best-case
performance for a gate model that can perfectly predict the fusion loss
of every configuration for every input."
"""

from __future__ import annotations

import numpy as np

from ...nn import Tensor
from .base import Gate

__all__ = ["LossBasedGate"]


class LossBasedGate(Gate):
    """Oracle gate backed by a precomputed true-loss lookup."""

    name = "loss_based"

    def __init__(self, true_losses: dict[int, np.ndarray] | None = None) -> None:
        self._table: dict[int, np.ndarray] = {}
        if true_losses:
            self.set_true_losses(true_losses)

    def set_true_losses(self, true_losses: dict[int, np.ndarray]) -> None:
        """Install the sample-id -> (|Phi|,) ground-truth loss mapping."""
        for sample_id, vector in true_losses.items():
            self._table[int(sample_id)] = np.asarray(vector, dtype=np.float64).reshape(-1)

    def __len__(self) -> int:
        return len(self._table)

    def predict_losses(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        if sample_ids is None:
            raise ValueError("loss-based gating requires sample ids (a-posteriori oracle)")
        missing = [s for s in sample_ids if int(s) not in self._table]
        if missing:
            raise KeyError(f"no ground-truth losses recorded for samples {missing[:5]}")
        return np.stack([self._table[int(s)] for s in sample_ids])

    def predict_losses_windowed(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        # Table lookups are already per-row independent; the batch call
        # is trivially identical to N single-frame calls.
        return self.predict_losses(gate_features, contexts, sample_ids)
