"""Gate interface (paper Sec. 4.2).

A gate's job: "(i) identify the context based on the input features,
(ii) estimate the performance of each model configuration in the context,
and (iii) compute the optimization result and use it to select phi*".
Steps (i)-(ii) differ per strategy and live here; step (iii) is the
shared joint optimization in :mod:`repro.core.optimization`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ...nn import Tensor

__all__ = ["Gate"]


class Gate(ABC):
    """Strategy that predicts the fusion loss of every configuration.

    Attributes
    ----------
    name:
        Short identifier used in result tables ("knowledge", "deep",
        "attention", "loss_based").
    bypasses_optimization:
        True for gates that select a configuration directly instead of
        emitting tunable loss estimates (Knowledge gating is statically
        programmed and "not tunable with our optimization", Sec. 5.1).
    """

    name: str = "gate"
    bypasses_optimization: bool = False

    @abstractmethod
    def predict_losses(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        """Estimate ``L_f`` for each configuration.

        Parameters
        ----------
        gate_features:
            ``(N, C, H, W)`` channel-concatenated stem features.
        contexts:
            Per-sample context labels; only the Knowledge gate (which
            assumes externally-identified context) may consume them.
        sample_ids:
            Per-sample dataset ids; only the Loss-Based oracle consumes
            them.

        Returns
        -------
        ``(N, |Phi|)`` predicted losses.
        """

    def select_direct(self, contexts: list[str]) -> list[str] | None:
        """For ``bypasses_optimization`` gates: chosen config names."""
        return None

    def predict_losses_windowed(
        self,
        gate_features: Tensor,
        contexts: list[str] | None = None,
        sample_ids: list[int] | None = None,
    ) -> np.ndarray:
        """Batched prediction, bit-identical to N single-frame calls.

        The batched closed-loop runner uses this to amortize gate work
        over a lookahead window while keeping traces exactly equal to
        the sequential path.  The default simply loops frame-by-frame
        (always exact); gates whose trunk is batch-invariant override it
        with a vectorized implementation (see :class:`~.deep.DeepGate`).
        """
        rows = [
            self.predict_losses(
                gate_features[i : i + 1],
                None if contexts is None else [contexts[i]],
                None if sample_ids is None else [sample_ids[i]],
            )
            for i in range(gate_features.shape[0])
        ]
        return np.concatenate(rows, axis=0)
