"""``repro.core.gating`` — the four context-identification strategies."""

from .attention import AttentionGate
from .base import Gate
from .deep import DeepGate, GateNetwork
from .knowledge import KNOWLEDGE_TABLE, KnowledgeGate
from .loss_based import LossBasedGate

__all__ = [
    "Gate",
    "GateNetwork",
    "DeepGate",
    "AttentionGate",
    "KnowledgeGate",
    "KNOWLEDGE_TABLE",
    "LossBasedGate",
]
