"""Modality-specific stem construction (paper Sec. 4.1).

One stem per sensor; all stems run on every input so the gate can see all
modalities (Algorithm 1, lines 2-3).  Stem features are shared between
the gate and every branch that consumes the sensor.
"""

from __future__ import annotations

import numpy as np

from ..datasets.sensors import SENSOR_CHANNELS, SENSORS
from ..perception.backbone import STEM_CHANNELS, StemBlock

__all__ = ["build_stems", "GATE_INPUT_CHANNELS"]

# The gate consumes the channel-concatenation of all stem outputs.
GATE_INPUT_CHANNELS = STEM_CHANNELS * len(SENSORS)


def build_stems(rng: np.random.Generator) -> dict[str, StemBlock]:
    """One :class:`StemBlock` per sensor, keyed by sensor name."""
    return {
        sensor: StemBlock(SENSOR_CHANNELS[sensor], rng=rng)
        for sensor in SENSORS
    }
