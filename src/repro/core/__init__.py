"""``repro.core`` — EcoFusion itself: the paper's primary contribution."""

from .config import (
    BASELINE_CONFIGS,
    BRANCH_NAMES,
    BRANCHES,
    BranchSpec,
    ModelConfiguration,
    build_config_library,
    config_by_name,
)
from .ecofusion import BranchOutputCache, EcoFusionModel, EcoFusionResult
from .gating import (
    KNOWLEDGE_TABLE,
    AttentionGate,
    DeepGate,
    Gate,
    GateNetwork,
    KnowledgeGate,
    LossBasedGate,
)
from .optimization import (
    SelectionResult,
    candidate_set,
    joint_loss,
    select_configuration,
)
from .stems import GATE_INPUT_CHANNELS, build_stems
from .temporal import (
    HysteresisPolicy,
    SensorDutyCycle,
    TemporalGate,
    TemporalResult,
    run_sequence,
)
from .training import (
    TrainingConfig,
    compute_loss_table,
    gate_feature_matrix,
    train_gate,
    train_perception,
)
from .training_drive import (
    DRIVE_GATE_NAMES,
    DriveGateDataset,
    DriveTrainingConfig,
    build_drive_dataset,
    collect_drive_frames,
    ensure_drive_gates,
    train_drive_gate,
    train_drive_gates,
)

__all__ = [
    "BASELINE_CONFIGS",
    "BRANCH_NAMES",
    "BRANCHES",
    "BranchSpec",
    "ModelConfiguration",
    "build_config_library",
    "config_by_name",
    "BranchOutputCache",
    "EcoFusionModel",
    "EcoFusionResult",
    "Gate",
    "GateNetwork",
    "DeepGate",
    "AttentionGate",
    "KnowledgeGate",
    "KNOWLEDGE_TABLE",
    "LossBasedGate",
    "SelectionResult",
    "candidate_set",
    "joint_loss",
    "select_configuration",
    "GATE_INPUT_CHANNELS",
    "build_stems",
    "HysteresisPolicy",
    "SensorDutyCycle",
    "TemporalGate",
    "TemporalResult",
    "run_sequence",
    "TrainingConfig",
    "compute_loss_table",
    "gate_feature_matrix",
    "train_gate",
    "train_perception",
    "DRIVE_GATE_NAMES",
    "DriveGateDataset",
    "DriveTrainingConfig",
    "build_drive_dataset",
    "collect_drive_frames",
    "ensure_drive_gates",
    "train_drive_gate",
    "train_drive_gates",
]
