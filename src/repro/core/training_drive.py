"""Scenario-conditioned gate training: learn dropout robustness from drives.

The paper's two-phase recipe (Sec. 5, ``repro.core.training``) trains the
gate on i.i.d. dataset frames, so a deployed gate has never seen a sensor
fault: the closed-loop runner must mask faulted configurations for it
("limp-home").  This module trains gates on the *runtime* distribution
instead — frames sampled from :class:`~repro.simulation.drive.DriveSource`
streams across the scenario library, scheduled faults included — so the
gate itself learns that configurations touching a dead sensor incur
catastrophic fusion loss, and can run **unmasked**:

1. :func:`collect_drive_frames` streams every training scenario once
   (seeded, deterministic) and keeps a strided subsample of the frames,
   faulted captures and all.
2. :func:`build_drive_dataset` reuses the phase-2 machinery unchanged —
   :func:`~repro.core.training.gate_feature_matrix` for frozen-stem gate
   inputs and :func:`~repro.core.training.compute_loss_table` (through a
   :class:`~repro.core.ecofusion.BranchOutputCache`) for the per-frame
   per-configuration fusion-loss targets.  On faulted frames the stems
   consume the degraded captures directly (a blackout zeroes the stem
   input; ``dead_stem_scale`` optionally attenuates the faulted sensors'
   stem *features* as well), so the loss table prices every configuration
   on exactly what it would see in deployment.
3. :func:`train_drive_gate` fits a fresh Deep/Attention gate on that
   table via :func:`~repro.core.training.train_gate` — same optimizer,
   same smooth-L1 regression, same shrinkage calibration, different
   distribution.

:func:`ensure_drive_gates` is the cached entry point: it installs the
trained gates into ``system.gates`` under ``drive_deep`` /
``drive_attention`` and persists their weights next to the system's
artifacts, so policy registries and sweep workers materialize them
without retraining.  The existing i.i.d. gates, their priors and the
policy registry are never touched — the golden-trace pins hold whether
or not this path runs.

Everything is seeded: the same :class:`DriveTrainingConfig` always
produces byte-identical gate weights (pinned by the equivalence tests).

Layering note: this module lives in ``repro.core`` but consumes
``repro.simulation`` streams; those imports are function-level because
``repro.simulation`` imports ``repro.core`` at module scope.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ..datasets.sensors import SENSORS
from ..perception.backbone import STEM_CHANNELS
from .ecofusion import BranchOutputCache, EcoFusionModel
from .gating.attention import AttentionGate
from .gating.deep import DeepGate
from .training import (
    TrainingConfig,
    compute_loss_table,
    gate_feature_matrix,
    train_gate,
)

__all__ = [
    "DRIVE_GATE_NAMES",
    "DriveTrainingConfig",
    "DriveGateDataset",
    "collect_drive_frames",
    "attenuate_dead_stem_features",
    "build_drive_dataset",
    "train_drive_gate",
    "train_drive_gates",
    "ensure_drive_gates",
    "ensure_policy_gates",
]

# Public gate-registry names -> the gate kind each one retrains.  These
# are the names `system.gates` carries after `ensure_drive_gates` and the
# names `PolicySpec.gate` may reference.
DRIVE_GATE_NAMES: dict[str, str] = {
    "drive_deep": "deep",
    "drive_attention": "attention",
}

# Seed salt per gate kind, so deep/attention initializations are
# independent draws even under one DriveTrainingConfig.seed (and
# independent of the order the kinds are trained in).
_KIND_SALT: dict[str, int] = {"deep": 0xD21D, "attention": 0xD21A}


@dataclass(frozen=True)
class DriveTrainingConfig:
    """Everything that determines a drive-gate training run.

    Attributes
    ----------
    scenarios:
        Library scenario names to stream for training frames.  The empty
        tuple (default) means the whole scenario library, in library
        order.
    scale:
        Timeline scale applied to every training scenario
        (:func:`~repro.simulation.scenario.scaled`).
    frame_stride:
        Keep every ``stride``-th frame of each stream (consecutive drive
        frames are highly correlated; striding buys coverage per unit of
        loss-table compute).
    max_frames_per_scenario:
        Optional cap on kept frames per scenario (after striding).
    seed:
        Seeds the drive streams *and* (through
        :meth:`training_config`) gate initialization and minibatch
        order.  Deliberately distinct from the benchmark default
        (seed 0), so training drives are held-out renders of the same
        scenario distribution the benchmarks evaluate.
    gate_iterations / gate_batch_size / gate_learning_rate /
    gate_weight_decay / gate_shrink:
        Phase-2 hyperparameters, forwarded to
        :class:`~repro.core.training.TrainingConfig`.
    dead_stem_scale:
        Optional factor applied to the *gate-input feature channels* of
        faulted sensors when building the training matrix (``0.0``
        zeroes them).  ``None`` (default) trains on the natural stem
        response to the degraded capture — exactly what the gate sees at
        runtime, where no such attenuation exists.
    version:
        Bump to invalidate persisted drive-gate artifacts when the
        pipeline changes incompatibly.
    """

    scenarios: tuple[str, ...] = ()
    scale: float = 0.25
    frame_stride: int = 2
    max_frames_per_scenario: int | None = None
    seed: int = 101
    gate_iterations: int = 600
    gate_batch_size: int = 16
    gate_learning_rate: float = 1.0e-3
    gate_weight_decay: float = 1.0e-2
    gate_shrink: float = 0.35
    dead_stem_scale: float | None = None
    version: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.frame_stride < 1:
            raise ValueError("frame_stride must be >= 1")
        if self.max_frames_per_scenario is not None and self.max_frames_per_scenario < 1:
            raise ValueError("max_frames_per_scenario must be >= 1 (or None)")
        if self.gate_iterations < 1:
            raise ValueError("gate_iterations must be >= 1")
        if not 0.0 <= self.gate_shrink <= 1.0:
            raise ValueError("gate_shrink must be in [0, 1]")
        if self.dead_stem_scale is not None and not 0.0 <= self.dead_stem_scale <= 1.0:
            raise ValueError("dead_stem_scale must be in [0, 1] (or None)")

    def resolved_scenarios(self) -> tuple[str, ...]:
        """The training scenario names, with () meaning the whole library."""
        if self.scenarios:
            return self.scenarios
        from ..simulation.library import SCENARIOS

        return tuple(SCENARIOS)

    def training_config(self) -> TrainingConfig:
        """The phase-2 :class:`TrainingConfig` this drive config implies."""
        return TrainingConfig(
            gate_iterations=self.gate_iterations,
            gate_batch_size=self.gate_batch_size,
            gate_learning_rate=self.gate_learning_rate,
            gate_weight_decay=self.gate_weight_decay,
            gate_shrink=self.gate_shrink,
            seed=self.seed,
        )

    def cache_key(self) -> str:
        """Stable digest of the fully-resolved config (artifact file name)."""
        fields = asdict(self)
        fields["scenarios"] = list(self.resolved_scenarios())
        payload = repr(sorted(fields.items())).encode()
        return hashlib.blake2s(payload, digest_size=8).hexdigest()


@dataclass
class DriveGateDataset:
    """A drive-stream gate-training set: inputs, targets and provenance.

    ``features`` is the ``(N, C, H, W)`` frozen-stem gate input matrix,
    ``loss_table`` the ``(N, |Phi|)`` per-configuration fusion losses on
    the same (possibly faulted) frames.  ``faulted`` records each
    frame's degraded physical streams; ``origins`` its
    ``(scenario, time_index)`` provenance.
    """

    features: np.ndarray
    loss_table: np.ndarray
    faulted: list[tuple[str, ...]] = field(default_factory=list)
    origins: list[tuple[str, int]] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_faulted(self) -> int:
        return sum(1 for f in self.faulted if f)


def collect_drive_frames(
    config: DriveTrainingConfig, image_size: int = 64
) -> list:
    """Stream every training scenario once; return the kept frames.

    Deterministic in ``(config, image_size)``: each scenario is rendered
    by a fresh :class:`~repro.simulation.drive.DriveSource` seeded with
    ``config.seed`` and subsampled through
    :meth:`~repro.simulation.drive.DriveSource.sample`, so fault windows
    land inside the kept frames exactly as scheduled.
    """
    from ..simulation.drive import DriveSource
    from ..simulation.library import get_scenario
    from ..simulation.scenario import scaled

    frames = []
    for name in config.resolved_scenarios():
        spec = get_scenario(name)
        if config.scale != 1.0:
            spec = scaled(spec, config.scale)
        source = DriveSource(spec, seed=config.seed, image_size=image_size)
        frames.extend(
            source.sample(
                stride=config.frame_stride,
                limit=config.max_frames_per_scenario,
            )
        )
    return frames


def attenuate_dead_stem_features(
    features: np.ndarray,
    faulted: list[tuple[str, ...]],
    scale: float,
) -> np.ndarray:
    """Scale the gate-input channel blocks of faulted sensors.

    The gate input is the channel concatenation of all stem outputs in
    ``SENSORS`` order (:meth:`EcoFusionModel.gate_features`), so sensor
    ``i`` owns channels ``[i * STEM_CHANNELS, (i + 1) * STEM_CHANNELS)``.
    Returns a copy; the input matrix is left untouched.
    """
    if features.shape[0] != len(faulted):
        raise ValueError(
            f"features ({features.shape[0]}) and fault records "
            f"({len(faulted)}) disagree"
        )
    out = features.copy()
    offset = {s: i * STEM_CHANNELS for i, s in enumerate(SENSORS)}
    for row, down in enumerate(faulted):
        for sensor in down:
            start = offset[sensor]
            out[row, start : start + STEM_CHANNELS] *= scale
    return out


def build_drive_dataset(
    model: EcoFusionModel,
    frames: list,
    config: DriveTrainingConfig,
    cache: BranchOutputCache | None = None,
) -> DriveGateDataset:
    """Gate inputs + loss-table targets for a list of drive frames.

    Reuses the phase-2 machinery verbatim: every branch runs once per
    frame through the shared :class:`BranchOutputCache`, then every
    configuration is priced by late-fusing the cached branch outputs.
    Faulted frames flow through unchanged — a configuration leaning on a
    blacked-out lidar earns its catastrophic loss here, which is the
    supervision signal the unmasked gate needs.
    """
    from ..evaluation.loss_metrics import fusion_loss

    samples = [f.sample for f in frames]
    features = gate_feature_matrix(model, samples)
    faulted = [f.faulted_sensors for f in frames]
    if config.dead_stem_scale is not None:
        features = attenuate_dead_stem_features(
            features, faulted, config.dead_stem_scale
        )
    table = compute_loss_table(
        model, samples, fusion_loss,
        cache=cache if cache is not None else BranchOutputCache(),
    )
    origins = [(f.scenario, f.time_index) for f in frames]
    return DriveGateDataset(
        features=features, loss_table=table, faulted=faulted, origins=origins
    )


def _fresh_gate(model: EcoFusionModel, kind: str, config: DriveTrainingConfig):
    """A new, deterministically-initialized gate of the given kind.

    The gate carries ``drive_config_key`` so :func:`ensure_drive_gates`
    can tell which training config produced an installed instance.
    """
    if kind not in _KIND_SALT:
        raise ValueError(
            f"unknown drive gate kind '{kind}'; valid: {sorted(_KIND_SALT)}"
        )
    rng = np.random.default_rng((config.seed, _KIND_SALT[kind]))
    cls = AttentionGate if kind == "attention" else DeepGate
    gate = cls(len(model.library), rng=rng, image_size=model.image_size)
    gate.name = f"drive_{kind}"
    gate.drive_config_key = config.cache_key()
    return gate


def train_drive_gate(
    model: EcoFusionModel,
    dataset: DriveGateDataset,
    kind: str,
    config: DriveTrainingConfig,
):
    """Train one fresh gate of ``kind`` on the drive dataset.

    Byte-deterministic in ``(model weights, dataset, config)``: gate
    initialization draws from a salted ``config.seed`` generator and
    :func:`train_gate` seeds its own minibatch stream, so two calls
    produce identical weights regardless of call order or cache state.
    """
    gate = _fresh_gate(model, kind, config)
    train_gate(gate, dataset.features, dataset.loss_table, config.training_config())
    return gate


def train_drive_gates(
    system,
    config: DriveTrainingConfig | None = None,
    kinds: tuple[str, ...] = ("deep", "attention"),
    cache: BranchOutputCache | None = None,
) -> dict[str, object]:
    """Collect drive frames once, then train every requested gate kind.

    Returns ``{"drive_<kind>": gate}`` without touching ``system.gates``
    (that is :func:`ensure_drive_gates`'s job).
    """
    config = config or DriveTrainingConfig()
    frames = collect_drive_frames(config, image_size=system.model.image_size)
    dataset = build_drive_dataset(system.model, frames, config, cache=cache)
    return {
        f"drive_{kind}": train_drive_gate(system.model, dataset, kind, config)
        for kind in kinds
    }


# ----------------------------------------------------------------------
# Persistence + idempotent installation
# ----------------------------------------------------------------------
def _artifact_path(system, config: DriveTrainingConfig, root):
    """Resolve where this system's drive-gate artifact lives.

    ``root`` wins; otherwise the root the system itself was loaded from
    (``TrainedSystem.artifact_root``, set by ``get_or_build_system``),
    falling back to the default artifact directory — so weights really
    do land next to the system's own artifacts for custom-rooted systems.
    """
    from pathlib import Path

    from ..evaluation.cache import DEFAULT_ARTIFACT_ROOT

    if root is None:
        root = getattr(system, "artifact_root", None)
    base = Path(root) if root is not None else DEFAULT_ARTIFACT_ROOT
    return base / system.spec.cache_key() / f"drive_gates_{config.cache_key()}.npz"


def _save_gates(gates: dict[str, object], config: DriveTrainingConfig, path) -> None:
    """Persist ``gates`` into ``path``, merging with any kinds already
    on disk, so sequential ensures of different kinds extend one
    artifact instead of clobbering it.  The read-merge-write is not
    locked: two *concurrent* writers can still lose each other's kind
    (the later ``os.replace`` wins), which never corrupts the file —
    per-pid temp names keep writes whole — and never changes results,
    since payloads are byte-deterministic; the missing kind is simply
    retrained on its next lookup."""
    from ..nn.serialization import load_state, save_state

    state: dict[str, np.ndarray] = {}
    if path.exists():
        try:
            state = load_state(path)
        except Exception:
            state = {}  # corrupt artifact: rewrite from scratch
    for name, gate in gates.items():
        kind = name.removeprefix("drive_")
        for key, value in gate.network.state_dict().items():
            state[f"{kind}.{key}"] = value
        state[f"{kind}.__prior__"] = np.asarray(gate.prior, dtype=np.float64)
    save_state(state, path)
    kinds = sorted({k.split(".", 1)[0] for k in state if k.endswith(".__prior__")})
    meta = {"config": asdict(config), "gates": [f"drive_{k}" for k in kinds]}
    # Same atomic discipline as the weights: per-pid tmp + replace, so a
    # crash or concurrent writer never leaves a torn sidecar.
    sidecar = path.with_suffix(".json")
    tmp = sidecar.parent / f"{sidecar.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True))
        os.replace(tmp, sidecar)
    finally:
        tmp.unlink(missing_ok=True)


def _load_gates(
    system, config: DriveTrainingConfig, kinds: tuple[str, ...], path
) -> dict[str, object]:
    """Restore whichever requested kinds ``path`` holds (possibly none)."""
    from ..nn.serialization import load_state

    if not path.exists():
        return {}
    # Retry once before giving up: a reader racing _save_gates's
    # os.replace (or a transient I/O error) is indistinguishable from
    # corruption on the first attempt only.
    state = None
    for attempt in (1, 2):
        try:
            state = load_state(path)
            break
        except Exception as error:
            if attempt == 1:
                continue
            # Truly corrupt artifact: retrain instead of crashing.
            print(
                f"[drive-gates] discarding unreadable artifact ({error}); retraining"
            )
            return {}
    gates: dict[str, object] = {}
    for kind in kinds:
        prior_key = f"{kind}.__prior__"
        if prior_key not in state:
            continue  # artifact predates this kind: caller trains it
        gate = _fresh_gate(system.model, kind, config)
        prefix = f"{kind}."
        gate.network.load_state_dict({
            k[len(prefix):]: v
            for k, v in state.items()
            if k.startswith(prefix) and k != prior_key
        })
        gate.network.eval()
        gate.set_prior(state[prior_key], shrink=config.gate_shrink)
        gates[f"drive_{kind}"] = gate
    return gates


def ensure_drive_gates(
    system,
    config: DriveTrainingConfig | None = None,
    kinds: tuple[str, ...] = ("deep", "attention"),
    root=None,
    force_rebuild: bool = False,
) -> dict[str, object]:
    """Install drive-trained gates into ``system.gates`` (idempotent).

    Lookup order mirrors :func:`~repro.evaluation.cache.get_or_build_system`:
    gates already installed *for this config* (instances carry the
    producing config's ``cache_key``, so a different config never
    silently reuses them) -> on-disk artifact next to the system's
    weights (per-kind: present kinds load, absent kinds train and are
    merged back) -> a full training run.  Existing i.i.d. gates, their
    priors and the loss tables are never modified.
    """
    if not kinds:
        return {}
    config = config or DriveTrainingConfig()
    key = config.cache_key()
    names = [f"drive_{kind}" for kind in kinds]
    path = _artifact_path(system, config, root)
    if not force_rebuild and all(
        getattr(system.gates.get(n), "drive_config_key", None) == key
        for n in names
    ):
        gates = {n: system.gates[n] for n in names}
        # Installed-in-memory gates must still exist on disk at the
        # requested root: spawn-start sweep workers load from there.
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _save_gates(gates, config, path)
        return gates

    gates: dict[str, object] = {}
    if not force_rebuild:
        gates.update(_load_gates(system, config, kinds, path))
    missing = tuple(k for k in kinds if f"drive_{k}" not in gates)
    if missing:
        gates.update(train_drive_gates(system, config, kinds=missing))
        path.parent.mkdir(parents=True, exist_ok=True)
        _save_gates(gates, config, path)
    system.gates.update(gates)
    return gates


def ensure_policy_gates(
    system, policy_specs, config: DriveTrainingConfig | None = None, root=None
) -> None:
    """Materialize drive gates any of ``policy_specs`` will need.

    The sweep engine calls this both in the parent process before
    sharding (forked workers inherit the trained gates) and in each
    worker before its first shard (spawned workers load the persisted
    artifact from the sweep's ``root`` instead of retraining with
    defaults).  No-op when no spec references a drive gate.
    """
    kinds = tuple(sorted({
        DRIVE_GATE_NAMES[spec.gate]
        for spec in policy_specs
        if getattr(spec, "gate", None) in DRIVE_GATE_NAMES
    }))
    if kinds:
        ensure_drive_gates(system, config=config, kinds=kinds, root=root)
