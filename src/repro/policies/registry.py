"""Named policy registry + picklable policy descriptors.

:class:`PolicySpec` is the process-boundary representation of a policy:
a name plus gate/config references and scalars, materialized against a
trained system with :meth:`PolicySpec.build` inside whichever process
runs a sweep shard (``repro.simulation.sweep``).  Nothing heavier than a
few strings ever crosses a pickle boundary.

The registry maps stable public names ("ecofusion_attention",
"static_late", "soc_linear_attention", ...) to specs so benchmark CLIs
can sweep policies by name (``bench_scenarios.py --policies``) and
examples can construct them without touching constructors.  Register
custom specs with :func:`register_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import BASELINE_CONFIGS
from .adaptive import EcoFusionPolicy
from .base import PerceptionPolicy
from .soc import LAMBDA_SCHEDULES, SoCAwarePolicy
from .static import StaticPolicy

__all__ = [
    "PolicySpec",
    "register_policy",
    "policy_names",
    "get_policy_spec",
    "build_policy",
]

POLICY_KINDS = ("adaptive", "static", "soc_aware")


@dataclass(frozen=True)
class PolicySpec:
    """Picklable description of a perception policy.

    ``gate`` names an entry of ``TrainedSystem.gates`` (adaptive and
    SoC-aware policies); ``config_name`` names a library configuration
    (static policies).  ``schedule``/``lambda_min``/``lambda_max``
    parameterize the SoC-aware ``lambda_E`` ramp.

    ``gate`` may also name a drive-trained gate (``drive_deep`` /
    ``drive_attention``): :meth:`build` then materializes it on demand
    through :func:`repro.core.training_drive.ensure_drive_gates`
    (trained at most once per system, persisted next to its artifacts).
    ``fault_masking=False`` opts the built policy out of the runner's
    limp-home health masks — the learned gate handles sensor dropout
    itself.
    """

    name: str
    kind: str
    gate: str | None = None
    config_name: str | None = None
    lambda_e: float = 0.05
    gamma: float = 0.5
    alpha: float = 0.4
    hysteresis_margin: float = 0.05
    schedule: str = "linear"
    lambda_min: float = 0.05
    lambda_max: float = 0.6
    fault_masking: bool = True

    def __post_init__(self) -> None:
        if self.kind in ("adaptive", "soc_aware"):
            if not self.gate:
                raise ValueError(f"policy '{self.name}' needs a gate name")
        elif self.kind == "static":
            if not self.config_name:
                raise ValueError(f"static policy '{self.name}' needs a config_name")
        else:
            raise ValueError(
                f"unknown policy kind '{self.kind}'; valid: {POLICY_KINDS}"
            )
        if self.kind == "soc_aware":
            # Mirror SoCAwarePolicy's constructor checks so a bad spec
            # fails at registration / CLI-parse time, not inside a
            # sweep worker process mid-run.
            if self.schedule not in LAMBDA_SCHEDULES:
                raise ValueError(
                    f"unknown lambda schedule '{self.schedule}'; valid: "
                    f"{sorted(LAMBDA_SCHEDULES)}"
                )
            if not 0.0 <= self.lambda_min <= self.lambda_max <= 1.0:
                raise ValueError(
                    f"policy '{self.name}' needs 0 <= lambda_min <= "
                    f"lambda_max <= 1, got [{self.lambda_min}, "
                    f"{self.lambda_max}]"
                )
            if self.schedule == "exponential" and self.lambda_min <= 0.0:
                raise ValueError(
                    f"policy '{self.name}': exponential schedule requires "
                    "lambda_min > 0"
                )

    def build(self, system) -> PerceptionPolicy:
        """Materialize the live policy against a trained system."""
        if self.kind == "static":
            assert self.config_name is not None
            return StaticPolicy(self.config_name, name=self.name)
        gate = system.gates.get(self.gate)
        if gate is None:
            # Drive-trained gates are materialized lazily: trained (or
            # loaded from the system's artifact directory) on first use,
            # then installed into system.gates for every later build.
            from ..core.training_drive import DRIVE_GATE_NAMES, ensure_drive_gates

            if self.gate not in DRIVE_GATE_NAMES:
                raise KeyError(
                    f"policy '{self.name}' references unknown gate "
                    f"'{self.gate}'; system has {sorted(system.gates)} "
                    f"(+ trainable: {sorted(DRIVE_GATE_NAMES)})"
                )
            ensure_drive_gates(system, kinds=(DRIVE_GATE_NAMES[self.gate],))
            gate = system.gates[self.gate]
        if self.kind == "soc_aware":
            return SoCAwarePolicy(
                gate,
                schedule=self.schedule,
                lambda_min=self.lambda_min,
                lambda_max=self.lambda_max,
                gamma=self.gamma,
                alpha=self.alpha,
                hysteresis_margin=self.hysteresis_margin,
                name=self.name,
                fault_masking=self.fault_masking,
            )
        return EcoFusionPolicy(
            gate,
            lambda_e=self.lambda_e,
            gamma=self.gamma,
            alpha=self.alpha,
            hysteresis_margin=self.hysteresis_margin,
            name=self.name,
            fault_masking=self.fault_masking,
        )


# ----------------------------------------------------------------------
_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec, replace_existing: bool = False) -> PolicySpec:
    """Register ``spec`` under ``spec.name``; returns it for chaining."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"policy '{spec.name}' is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def policy_names() -> tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_policy_spec(name: str) -> PolicySpec:
    """Look up a registered spec (KeyError lists valid names on typo)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy '{name}'; valid: {sorted(_REGISTRY)}"
        ) from None


# Spec fields each policy kind actually consumes when built; overrides
# outside this set would be silently ignored, so build_policy rejects
# them instead.
_KIND_FIELDS: dict[str, frozenset[str]] = {
    "static": frozenset({"name", "config_name"}),
    "adaptive": frozenset(
        {"name", "gate", "lambda_e", "gamma", "alpha", "hysteresis_margin",
         "fault_masking"}
    ),
    "soc_aware": frozenset(
        {"name", "gate", "schedule", "lambda_min", "lambda_max",
         "gamma", "alpha", "hysteresis_margin", "fault_masking"}
    ),
}


def build_policy(name: str, system, **overrides) -> PerceptionPolicy:
    """Build a registered policy, optionally overriding spec fields.

    Only fields the spec's kind consumes may be overridden — e.g.
    ``lambda_e`` on a ``soc_aware`` policy (which schedules lambda_E
    from SoC instead) raises rather than being silently dropped.
    """
    spec = get_policy_spec(name)
    if overrides:
        ignored = set(overrides) - _KIND_FIELDS[spec.kind]
        if ignored:
            raise ValueError(
                f"overrides {sorted(ignored)} have no effect on "
                f"'{name}' (kind '{spec.kind}'); settable fields: "
                f"{sorted(_KIND_FIELDS[spec.kind])}"
            )
        spec = replace(spec, **overrides)
    return spec.build(system)


# ----------------------------------------------------------------------
# Built-in catalogue: the adaptive controllers, the paper's static
# baselines (one per Table 1 row, on the library substrate), and the
# SoC-aware lambda_E schedulers.
for _spec in (
    PolicySpec("ecofusion_attention", "adaptive", gate="attention"),
    PolicySpec("ecofusion_deep", "adaptive", gate="deep"),
    PolicySpec("ecofusion_knowledge", "adaptive", gate="knowledge"),
    PolicySpec("static_early", "static", config_name="EF_CLCRL"),
    PolicySpec("static_late", "static", config_name="LF_ALL"),
    PolicySpec(
        "soc_linear_attention", "soc_aware", gate="attention",
        schedule="linear", lambda_min=0.05, lambda_max=0.6,
    ),
    PolicySpec(
        "soc_exponential_attention", "soc_aware", gate="attention",
        schedule="exponential", lambda_min=0.05, lambda_max=0.6,
    ),
    # Drive-trained gates (repro.core.training_drive): trained on
    # scenario streams with faults included, so they run UNMASKED — no
    # limp-home health masks; dropout avoidance is learned behavior.
    PolicySpec(
        "ecofusion_drive_attention", "adaptive", gate="drive_attention",
        fault_masking=False,
    ),
    PolicySpec(
        "ecofusion_drive_deep", "adaptive", gate="drive_deep",
        fault_masking=False,
    ),
):
    register_policy(_spec)

# The paper's six baseline rows ("none_*", "early", "late") as policies.
for _baseline, _config in BASELINE_CONFIGS.items():
    register_policy(
        PolicySpec(f"baseline_{_baseline}", "static", config_name=_config)
    )
del _spec, _baseline, _config
