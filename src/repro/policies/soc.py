"""State-of-charge-aware energy scheduling (ROADMAP battery item).

A fixed ``lambda_E`` treats the first and last joule of the battery the
same; a real vehicle should not.  :class:`SoCAwarePolicy` schedules the
joint-loss energy weight as a function of the battery's state of charge:
full battery -> ``lambda_min`` (spend freely on accuracy), empty battery
-> ``lambda_max`` (hoard every joule).  Two ramp shapes are provided:

* ``linear`` — ``lambda(soc) = lambda_max - (lambda_max - lambda_min) * soc``;
* ``exponential`` — ``lambda(soc) = lambda_min * (lambda_max / lambda_min)
  ** (1 - soc)``: gentle while the battery is comfortable, steep as it
  empties (requires ``lambda_min > 0``).

Both are monotonically non-increasing in SoC, which the test suite pins.
"""

from __future__ import annotations

from ..core.gating.base import Gate
from ..telemetry.metrics import UNIT_BUCKETS
from .adaptive import EcoFusionPolicy
from .base import PolicyDecision, PolicyObservation

__all__ = ["SoCAwarePolicy", "LAMBDA_SCHEDULES", "lambda_for_soc"]


def _linear(soc: float, lambda_min: float, lambda_max: float) -> float:
    return lambda_max - (lambda_max - lambda_min) * soc


def _exponential(soc: float, lambda_min: float, lambda_max: float) -> float:
    return lambda_min * (lambda_max / lambda_min) ** (1.0 - soc)


LAMBDA_SCHEDULES = {"linear": _linear, "exponential": _exponential}


def lambda_for_soc(
    soc: float, schedule: str, lambda_min: float, lambda_max: float
) -> float:
    """Scheduled ``lambda_E`` for a state of charge, clamped to [0, 1]."""
    try:
        ramp = LAMBDA_SCHEDULES[schedule]
    except KeyError:
        raise ValueError(
            f"unknown lambda schedule '{schedule}'; valid: {sorted(LAMBDA_SCHEDULES)}"
        ) from None
    soc = min(max(float(soc), 0.0), 1.0)
    return min(max(ramp(soc, lambda_min, lambda_max), 0.0), 1.0)


class SoCAwarePolicy(EcoFusionPolicy):
    """EcoFusion whose energy weight rises as the battery drains."""

    def __init__(
        self,
        gate: Gate,
        schedule: str = "linear",
        lambda_min: float = 0.05,
        lambda_max: float = 0.6,
        gamma: float = 0.5,
        alpha: float = 0.4,
        hysteresis_margin: float = 0.05,
        name: str | None = None,
        fault_masking: bool = True,
    ) -> None:
        if schedule not in LAMBDA_SCHEDULES:
            raise ValueError(
                f"unknown lambda schedule '{schedule}'; valid: "
                f"{sorted(LAMBDA_SCHEDULES)}"
            )
        if gate is not None and gate.bypasses_optimization:
            raise ValueError(
                f"gate '{gate.name}' selects configurations directly and "
                "never consults lambda_E; SoC-aware scheduling needs a "
                "loss-predicting gate"
            )
        if not 0.0 <= lambda_min <= lambda_max <= 1.0:
            raise ValueError(
                "need 0 <= lambda_min <= lambda_max <= 1, got "
                f"[{lambda_min}, {lambda_max}]"
            )
        if schedule == "exponential" and lambda_min <= 0.0:
            raise ValueError("exponential schedule requires lambda_min > 0")
        super().__init__(
            gate,
            lambda_e=lambda_min,
            gamma=gamma,
            alpha=alpha,
            hysteresis_margin=hysteresis_margin,
            name=name or f"soc_{schedule}[{gate.name}]",
            fault_masking=fault_masking,
        )
        self.schedule = schedule
        self.lambda_min = float(lambda_min)
        self.lambda_max = float(lambda_max)

    def effective_lambda(self, observation: PolicyObservation) -> float:
        return lambda_for_soc(
            observation.soc, self.schedule, self.lambda_min, self.lambda_max
        )

    def record_decision(self, decision: PolicyDecision, metrics) -> None:
        super().record_decision(decision, metrics)
        if decision.lambda_e is not None:
            # Where along the [lambda_min, lambda_max] ramp the schedule
            # is operating — a distribution, not just the last value.
            span = self.lambda_max - self.lambda_min
            position = (
                (decision.lambda_e - self.lambda_min) / span if span > 0 else 0.0
            )
            metrics.histogram(
                "policy.lambda_schedule_position",
                buckets=UNIT_BUCKETS,
                policy=self.name,
            ).observe(min(max(position, 0.0), 1.0))

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            kind="soc_aware",
            schedule=self.schedule,
            lambda_min=self.lambda_min,
            lambda_max=self.lambda_max,
        )
        del info["lambda_e"]  # scheduled, not constant
        return info
