"""Static pipelines as policies.

A static policy executes one fixed configuration every frame — the
paper's None / Early / Late baselines, expressed on the same
:class:`~repro.policies.base.PerceptionPolicy` seam the adaptive
controllers use, which is what makes closed-loop comparisons
apples-to-apples.
"""

from __future__ import annotations

from .base import PerceptionPolicy, PolicyDecision, PolicyObservation

__all__ = ["StaticPolicy"]


class StaticPolicy(PerceptionPolicy):
    """One fixed configuration, executed unconditionally.

    Static pipelines have no health monitor hook in the paper's framing:
    they keep executing their configuration through sensor faults (and
    pay the accuracy cost), which the fault-scenario benchmarks rely on.
    Only the configuration's own sensors are powered.
    """

    powers_all_stems = False

    def __init__(self, config_name: str, name: str | None = None) -> None:
        super().__init__()
        if not config_name:
            raise ValueError("static policy needs a config_name")
        self.config_name = config_name
        self.name = name or f"static[{config_name}]"
        self._config = None

    def bind(self, library, energies) -> None:
        super().bind(library, energies)
        self._config = self.binding.config_named(self.config_name)

    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        assert self._config is not None, "policy must be bound before decide()"
        return PolicyDecision(config=self._config)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": "static",
            "config_name": self.config_name,
        }
