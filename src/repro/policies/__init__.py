"""``repro.policies`` — first-class perception controllers.

The policy layer separates *what to execute next* (a controller
decision: configuration choice under energy, accuracy, fault and battery
pressure) from *how to execute it* (the model substrate) and *where it
runs* (the closed-loop runner).  Everything that selects configurations
lives here:

* :class:`PerceptionPolicy` — the ABC (``decide/reset/describe``);
* :class:`EcoFusionPolicy` — the paper's adaptive controller
  (Algorithm 1) with any gate, temporal smoothing and fault limp-home;
* :class:`StaticPolicy` — fixed pipelines (the paper's baselines);
* :class:`SoCAwarePolicy` — schedules ``lambda_E`` from battery state
  of charge (linear / exponential ramps);
* the registry (:func:`get_policy_spec`, :func:`build_policy`) mapping
  stable names to picklable :class:`PolicySpec` descriptors for sweeps.
"""

from .adaptive import EcoFusionPolicy
from .base import (
    MASKED_LOSS,
    PerceptionPolicy,
    PolicyBinding,
    PolicyDecision,
    PolicyObservation,
)
from .registry import (
    PolicySpec,
    build_policy,
    get_policy_spec,
    policy_names,
    register_policy,
)
from .soc import LAMBDA_SCHEDULES, SoCAwarePolicy, lambda_for_soc
from .static import StaticPolicy

__all__ = [
    "MASKED_LOSS",
    "PerceptionPolicy",
    "PolicyBinding",
    "PolicyDecision",
    "PolicyObservation",
    "EcoFusionPolicy",
    "StaticPolicy",
    "SoCAwarePolicy",
    "LAMBDA_SCHEDULES",
    "lambda_for_soc",
    "PolicySpec",
    "register_policy",
    "policy_names",
    "get_policy_spec",
    "build_policy",
]
