"""The perception-policy interface.

EcoFusion's contribution is a *controller*: something that watches the
world (frame features, predicted losses, sensor health, battery state)
and picks the fusion configuration to execute next.  This module defines
that seam so controllers are first-class objects, independent of the
closed-loop runner that hosts them:

* :class:`PolicyObservation` — everything a policy may look at for one
  fusion cycle.  The runner fills in only what the policy's gate needs
  (``predicted_losses`` for learned gates, ``direct_selection`` for
  bypass gates, nothing for static pipelines).
* :class:`PolicyDecision` — the chosen :class:`ModelConfiguration` plus
  diagnostics (whether fault masking constrained the choice, and the
  effective ``lambda_E`` used, which SoC-aware policies vary per frame).
* :class:`PerceptionPolicy` — the ABC: ``decide(observation) ->
  decision`` with ``reset()`` per drive and ``describe()`` for
  self-describing benchmark output.

Policies are bound to a model library (:meth:`PerceptionPolicy.bind`)
once per drive, never to a model instance: they see configuration names
and the offline energy table, not stems or branches, which is what keeps
the gate/branch substrate policy-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..core.config import ModelConfiguration
from ..core.gating.base import Gate

__all__ = [
    "MASKED_LOSS",
    "PolicyBinding",
    "PolicyObservation",
    "PolicyDecision",
    "PerceptionPolicy",
]

# Loss surrogate assigned to configurations that depend on a failed
# sensor; large enough that the candidate filter never keeps them while
# any healthy configuration exists.
MASKED_LOSS = 1.0e9


@dataclass(frozen=True)
class PolicyBinding:
    """The slice of a trained system a policy is allowed to see.

    ``energies`` is the offline per-configuration energy table ``E(phi)``
    aligned with ``library`` order (the quantity Eq. 8 trades off against
    predicted loss).
    """

    library: tuple[ModelConfiguration, ...]
    energies: np.ndarray

    def __post_init__(self) -> None:
        if len(self.library) != self.energies.shape[0]:
            raise ValueError(
                f"library size {len(self.library)} != energy table "
                f"{self.energies.shape[0]}"
            )
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(self.library)}
        )

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no configuration named '{name}' in bound library"
            ) from None

    def config_named(self, name: str) -> ModelConfiguration:
        return self.library[self.index_of(name)]


@dataclass(frozen=True)
class PolicyObservation:
    """Everything one fusion cycle exposes to the controller.

    Attributes
    ----------
    time_index:
        Frame index within the drive.
    context:
        Driving-context label of the frame.
    soc:
        Battery state of charge *before* this cycle's drain, in [0, 1].
    faulted_sensors:
        Physical sensor streams the health monitor reports degraded.
    healthy_mask:
        Per-configuration boolean mask (library order): True where a
        configuration touches no failed sensor.  ``None`` means fault
        masking is inactive this frame (no faults, or disabled).
    predicted_losses:
        ``(|Phi|,)`` gate-predicted fusion losses (learned gates only).
    direct_selection:
        Configuration name chosen by a bypass gate (knowledge gating),
        before fault limp-home is applied.
    features:
        Per-sensor stem feature tensors, when the policy's gate needed
        them this frame (read-only, shared with the runner's execution
        path).  In windowed execution the tensors cover the whole
        lookahead window; custom feature-hungry policies should index
        rows by position within the window.
    """

    time_index: int
    context: str
    soc: float
    faulted_sensors: tuple[str, ...] = ()
    healthy_mask: np.ndarray | None = None
    predicted_losses: np.ndarray | None = None
    direct_selection: str | None = None
    features: dict | None = None


@dataclass(frozen=True)
class PolicyDecision:
    """The controller's output for one fusion cycle."""

    config: ModelConfiguration
    fault_masked: bool = False
    lambda_e: float | None = None
    diagnostics: dict = field(default_factory=dict)


class PerceptionPolicy(ABC):
    """Strategy that selects the fusion configuration each cycle.

    Lifecycle: the runner calls :meth:`bind` (model library + energy
    table) and :meth:`reset` at the start of every drive, then
    :meth:`decide` once per frame.  Policies may keep per-drive state
    (hysteresis incumbents, temporal smoothing) between ``decide`` calls;
    ``reset`` must clear all of it.

    Attributes
    ----------
    name:
        Identifier used in traces and benchmark tables.
    gate:
        The gate the runner must evaluate for this policy, or ``None``
        for gate-free policies (static pipelines).  The runner feeds
        bypass gates' selections through ``direct_selection`` and learned
        gates' loss estimates through ``predicted_losses``.
    powers_all_stems:
        True when the policy keeps every sensor stem alive (adaptive
        inference feeds the gate all stems); False when only the chosen
        configuration's own sensors are powered (static pipelines).  The
        runner's cost model prices stems accordingly.
    use_fault_masking:
        True (default) when the policy wants the runner's health monitor
        to supply per-configuration fault masks (``healthy_mask``), the
        limp-home safety net for gates trained on healthy i.i.d. frames.
        Policies whose gate learned sensor dropout from drive streams
        (``repro.core.training_drive``) set this False and run unmasked:
        their observations carry ``healthy_mask=None`` even while
        sensors are down, so avoidance of dead-sensor configurations
        must come from the gate's own loss predictions.
    """

    name: str = "policy"
    powers_all_stems: bool = True
    use_fault_masking: bool = True

    def __init__(self) -> None:
        self._binding: PolicyBinding | None = None

    # ------------------------------------------------------------------
    @property
    def gate(self) -> Gate | None:
        """Gate the runner must evaluate per frame (None = gate-free)."""
        return None

    @property
    def runtime_gate(self) -> Gate | None:
        """The gate instance to evaluate *this drive* (set by reset).

        Adaptive policies may wrap their base gate per drive (temporal
        smoothing); the default returns :attr:`gate` unchanged.
        """
        return self.gate

    @property
    def binding(self) -> PolicyBinding:
        if self._binding is None:
            raise RuntimeError(f"policy '{self.name}' is not bound to a library")
        return self._binding

    def bind(self, library, energies: np.ndarray) -> None:
        """Attach the configuration library and offline energy table."""
        self._binding = PolicyBinding(
            library=tuple(library), energies=np.asarray(energies, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-drive state (called by the runner before each run)."""

    def state_dict(self) -> dict:
        """Snapshot mutable per-drive state for checkpoint/resume.

        Stateless policies (the static baselines) return ``{}``.
        Stateful policies override both hooks; ``load_state_dict`` is
        always called *after* ``bind()`` + ``reset()``, so overrides can
        assume freshly-built per-drive machinery to load into.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

    @abstractmethod
    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        """Select the configuration to execute for ``observation``."""

    def describe(self) -> dict:
        """JSON-ready self-description (carried into benchmark output)."""
        return {"name": self.name, "kind": type(self).__name__}

    # ------------------------------------------------------------------
    def record_decision(self, decision: PolicyDecision, metrics) -> None:
        """Publish one decision to a metrics registry (telemetry seam).

        The runner calls this once per frame **only when metrics are
        enabled**, after :meth:`decide`; the default records the
        configuration-decision distribution and fault-masking counter.
        Subclasses extend it with policy-specific signals (effective
        ``lambda_E``, schedule position) and must call ``super()``.
        Implementations must only *read* — never influence the next
        decision — so telemetry cannot perturb a drive.
        """
        metrics.counter(
            "policy.decisions", policy=self.name, config=decision.config.name
        ).inc()
        if decision.fault_masked:
            metrics.counter("policy.fault_masked", policy=self.name).inc()
