"""The adaptive EcoFusion controller (paper Algorithm 1) as a policy.

Per frame: the runner evaluates the policy's gate — loss estimates for
learned gates, a direct table lookup for bypass gates — and the policy
turns that observation into a configuration choice:

* learned gates: mask configurations that depend on failed sensors
  (limp-home), then run the joint energy/accuracy optimization through
  the hysteresis selector (Eq. 7-9 + switching margin);
* bypass gates (knowledge gating): take the selected configuration,
  falling back to the cheapest healthy configuration when the selection
  touches a failed sensor.

Temporal smoothing is applied per drive by wrapping the base gate in a
:class:`~repro.core.temporal.TemporalGate` (``alpha < 1``), exactly as a
deployed controller would reset its smoother at ignition.
"""

from __future__ import annotations

import numpy as np

from ..core.gating.base import Gate
from ..core.temporal import HysteresisPolicy, TemporalGate
from .base import MASKED_LOSS, PerceptionPolicy, PolicyDecision, PolicyObservation

__all__ = ["EcoFusionPolicy"]


class EcoFusionPolicy(PerceptionPolicy):
    """Energy-aware adaptive selection with any gate.

    Parameters
    ----------
    gate:
        Loss-predicting or bypass gate (``repro.core.gating``).
    lambda_e:
        Energy weight of the joint loss (Eq. 8).  Subclasses may vary it
        per frame by overriding :meth:`effective_lambda`.
    gamma:
        Candidate-set loss margin (Eq. 7).
    alpha:
        Temporal smoothing factor; ``alpha >= 1`` disables smoothing.
    hysteresis_margin:
        Joint-loss margin a challenger must beat to displace the
        incumbent configuration.
    fault_masking:
        When False the runner's health monitor is bypassed for this
        policy: no limp-home masks, ever — the gate's own loss
        predictions must steer around dead sensors.  Only sensible for
        gates trained on drive streams with faults included
        (``repro.core.training_drive``).
    """

    powers_all_stems = True

    def __init__(
        self,
        gate: Gate,
        lambda_e: float = 0.05,
        gamma: float = 0.5,
        alpha: float = 0.4,
        hysteresis_margin: float = 0.05,
        name: str | None = None,
        fault_masking: bool = True,
    ) -> None:
        super().__init__()
        if gate is None:
            raise ValueError("adaptive policy needs a gate")
        self._gate = gate
        self.lambda_e = float(lambda_e)
        self.gamma = float(gamma)
        self.alpha = float(alpha)
        self.hysteresis_margin = float(hysteresis_margin)
        self.use_fault_masking = bool(fault_masking)
        self.name = name or f"ecofusion[{gate.name}]"
        self._runtime_gate: Gate | None = None
        self._hysteresis = HysteresisPolicy(margin=self.hysteresis_margin)

    # ------------------------------------------------------------------
    @property
    def gate(self) -> Gate:
        return self._gate

    @property
    def runtime_gate(self) -> Gate:
        if self._runtime_gate is None:
            raise RuntimeError(f"policy '{self.name}' was not reset before use")
        return self._runtime_gate

    def reset(self) -> None:
        """Fresh per-drive state: hysteresis incumbent + temporal smoother."""
        self._hysteresis = HysteresisPolicy(margin=self.hysteresis_margin)
        gate = self._gate
        if isinstance(gate, TemporalGate):
            gate.reset()
            self._runtime_gate = gate
        elif gate.bypasses_optimization or self.alpha >= 1.0:
            self._runtime_gate = gate
        else:
            wrapped = TemporalGate(gate, alpha=self.alpha)
            wrapped.reset()
            self._runtime_gate = wrapped

    def state_dict(self) -> dict:
        """Hysteresis incumbent + temporal-smoother EMA (when wrapped)."""
        state: dict = {"hysteresis": self._hysteresis.state_dict()}
        if isinstance(self._runtime_gate, TemporalGate):
            state["gate"] = self._runtime_gate.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self._hysteresis.load_state_dict(state["hysteresis"])
        if "gate" in state:
            if not isinstance(self._runtime_gate, TemporalGate):
                raise ValueError(
                    f"checkpoint for '{self.name}' carries temporal-gate "
                    "state but the policy's runtime gate is not temporal"
                )
            self._runtime_gate.load_state_dict(state["gate"])

    # ------------------------------------------------------------------
    def effective_lambda(self, observation: PolicyObservation) -> float:
        """The energy weight used this frame (constant for the base policy)."""
        return self.lambda_e

    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        if observation.direct_selection is not None:
            return self._decide_bypass(observation)
        return self._decide_learned(observation)

    def _decide_bypass(self, observation: PolicyObservation) -> PolicyDecision:
        """Apply fault limp-home to a bypass gate's direct selection."""
        binding = self.binding
        index = binding.index_of(observation.direct_selection)
        config = binding.library[index]
        healthy = observation.healthy_mask
        # The runner's health monitor relaxes an all-impacted mask to
        # all-healthy before it gets here; guard anyway so a hand-built
        # observation degrades like the learned path (run the selection
        # rather than crash on an empty candidate list).
        if healthy is not None and healthy.any() and not healthy[index]:
            # Limp home: cheapest configuration avoiding failed sensors.
            candidates = [i for i in range(len(binding.library)) if healthy[i]]
            index = min(candidates, key=lambda i: binding.energies[i])
            return PolicyDecision(config=binding.library[index], fault_masked=True)
        return PolicyDecision(config=config)

    def _decide_learned(self, observation: PolicyObservation) -> PolicyDecision:
        """Mask faulted configurations and run the hysteresis selection."""
        binding = self.binding
        losses = observation.predicted_losses
        if losses is None:
            raise ValueError(
                f"policy '{self.name}' needs predicted losses; the runner "
                "must evaluate its gate"
            )
        healthy = observation.healthy_mask
        if healthy is not None:
            losses = np.where(healthy, losses, MASKED_LOSS)
            masked = not healthy.all()
        else:
            masked = False
        lam = self.effective_lambda(observation)
        index = self._hysteresis.choose(losses, binding.energies, lam, self.gamma)
        return PolicyDecision(
            config=binding.library[index], fault_masked=masked, lambda_e=lam
        )

    def record_decision(self, decision: PolicyDecision, metrics) -> None:
        super().record_decision(decision, metrics)
        if decision.lambda_e is not None:
            metrics.gauge("policy.lambda_e", policy=self.name).set(
                decision.lambda_e
            )

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "kind": "ecofusion",
            "gate": self._gate.name,
            "lambda_e": self.lambda_e,
            "gamma": self.gamma,
            "alpha": self.alpha,
            "hysteresis_margin": self.hysteresis_margin,
        }
        # Only flagged when disabled: the default (masked) description is
        # embedded verbatim in golden traces and benchmark JSON, which
        # must stay byte-identical for pre-existing policies.
        if not self.use_fault_masking:
            info["fault_masking"] = False
        return info
