"""nuScenes-style corpus export for generated (or library) scenarios.

Writes a scenario corpus — specs, rendered frame digests, ground-truth
annotations, optional policy detections and drive traces — as a
directory of schema-versioned JSON tables in the nuScenes layout
(MUSE_Carla's ``carla_to_nuscene_converter`` target format), so external
tools can consume generated corpora without importing this repo:

* ``meta.json`` — schema name/version, generation provenance (seed,
  image size, campaign digest), table row counts.
* ``category.json`` — the RADIATE object classes; records carry
  ``token``/``name``/``index`` (our 1-based detector label).
* ``scene.json`` — one record per scenario: ``token``, ``name``,
  ``description``, ``nbr_samples``, ``first_sample_token``,
  ``last_sample_token``, plus ``contexts`` and the spec's
  ``content_token`` for aliasing-proof provenance.
* ``sample.json`` — one record per frame: ``token``, ``scene_token``,
  ``timestamp`` (µs at the 4 Hz fusion cycle), doubly-linked
  ``prev``/``next`` chain, plus ``context`` and ``segment_index``.
* ``sample_data.json`` — one record per frame per sensor channel:
  ``token``, ``sample_token``, ``channel``, array ``shape``/``dtype``
  and a blake2s ``digest`` of the rendered float32 payload (the frames
  themselves are a pure function of ``(spec, seed, image_size)``, so
  the digest *is* the data: anyone with this repo regenerates the
  arrays bit-identically, and the digest pins that they did), plus the
  ``fault_modes`` active on the channel.
* ``sample_annotation.json`` — one record per ground-truth box:
  ``token``, ``sample_token``, ``category_name``, 2D ``bbox``
  ``[x1, y1, x2, y2]`` (this simulator is 2D; the nuScenes 3D
  translation/size/rotation triplet collapses to the box).
* ``detection.json`` (optional) — nuScenes detection-results style:
  ``{"results": {sample_token: [{"bbox", "detection_score",
  "detection_name"}, ...]}}`` from a policy's per-frame fused output.
* ``drive_trace.json`` (optional) — ``DriveTrace.to_dict()`` per
  scenario (energy/latency/mAP aggregates alongside the dataset).

Every table is dumped with ``json.dumps(indent=2, sort_keys=True)``, so
write → read → re-write is **byte-identical** (validated by
:func:`validate_corpus` callers and the round-trip tests) and corpora
diff cleanly in version control.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..datasets.contexts import CLASS_IDS, CLASS_NAMES, CONTEXT_NAMES
from ..datasets.sensors import SENSORS
from ..hardware.sensors_power import FUSION_CYCLE_HZ
from ..simulation.drive import DriveSource

__all__ = [
    "EXPORT_SCHEMA",
    "EXPORT_SCHEMA_VERSION",
    "Corpus",
    "build_corpus",
    "export_corpus",
    "load_corpus",
    "validate_corpus",
    "write_corpus",
]

EXPORT_SCHEMA = "repro.scenarios.nuscenes"
EXPORT_SCHEMA_VERSION = 1

# Fusion cycles are paced by the radar frame rate; nuScenes timestamps
# are integer microseconds.
_FRAME_US = int(round(1e6 / FUSION_CYCLE_HZ))

_REQUIRED_TABLES = (
    "category", "scene", "sample", "sample_data", "sample_annotation",
)


def _token(*parts) -> str:
    """Deterministic 32-hex-char record token (nuScenes token width)."""
    payload = ":".join(str(p) for p in parts).encode()
    return hashlib.blake2s(payload, digest_size=16).hexdigest()


@dataclass
class Corpus:
    """An in-memory corpus: the parsed content of every table."""

    meta: dict
    category: list[dict]
    scene: list[dict]
    sample: list[dict]
    sample_data: list[dict]
    sample_annotation: list[dict]
    detection: dict | None = None
    drive_trace: dict | None = None

    def tables(self) -> dict[str, object]:
        """File-stem -> payload, omitting absent optional tables."""
        out: dict[str, object] = {"meta": self.meta}
        for name in _REQUIRED_TABLES:
            out[name] = getattr(self, name)
        if self.detection is not None:
            out["detection"] = self.detection
        if self.drive_trace is not None:
            out["drive_trace"] = self.drive_trace
        return out


def build_corpus(
    specs,
    *,
    seed: int = 0,
    image_size: int = 64,
    campaign=None,
    detections: dict | None = None,
    traces: dict | None = None,
) -> Corpus:
    """Render ``specs`` and assemble the corpus tables in memory.

    ``detections`` maps scenario name -> per-frame
    :class:`~repro.perception.detections.Detections` (e.g.
    ``trace.detections`` from a ``collect_detections=True`` run);
    ``traces`` maps scenario name -> ``DriveTrace``.  Both are optional
    and may cover any subset of ``specs``.
    """
    specs = list(specs)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in corpus: {names}")
    detections = detections or {}
    traces = traces or {}
    for table, keys in (("detections", detections), ("traces", traces)):
        unknown = sorted(set(keys) - set(names))
        if unknown:
            raise ValueError(f"{table} for scenarios not in corpus: {unknown}")

    category = [
        {"token": _token("category", name), "name": name,
         "index": CLASS_IDS[name]}
        for name in CLASS_NAMES
    ]
    scenes: list[dict] = []
    samples: list[dict] = []
    sample_data: list[dict] = []
    annotations: list[dict] = []
    results: dict[str, list[dict]] = {}

    for spec in specs:
        scene_token = _token(
            "scene", spec.name, spec.content_token(), seed, image_size
        )
        frame_tokens = [
            _token("sample", scene_token, t) for t in range(spec.num_frames)
        ]
        source = DriveSource(spec, seed=seed, image_size=image_size)
        per_frame_dets = detections.get(spec.name)
        if per_frame_dets is not None and len(per_frame_dets) != spec.num_frames:
            raise ValueError(
                f"scenario '{spec.name}': {len(per_frame_dets)} detection "
                f"frames for a {spec.num_frames}-frame drive"
            )
        for frame in source:
            t = frame.time_index
            token = frame_tokens[t]
            samples.append({
                "token": token,
                "scene_token": scene_token,
                "timestamp": t * _FRAME_US,
                "prev": frame_tokens[t - 1] if t > 0 else "",
                "next": (
                    frame_tokens[t + 1] if t + 1 < spec.num_frames else ""
                ),
                "context": frame.context,
                "segment_index": frame.segment_index,
            })
            for channel in SENSORS:
                array = frame.sample.sensors[channel]
                sample_data.append({
                    "token": _token("data", token, channel),
                    "sample_token": token,
                    "channel": channel,
                    "fileformat": "digest",
                    "shape": [int(d) for d in array.shape],
                    "dtype": str(array.dtype),
                    "digest": hashlib.blake2s(
                        array.tobytes(), digest_size=16
                    ).hexdigest(),
                    "is_key_frame": True,
                    "fault_modes": sorted(
                        f.mode for f in frame.faults if channel in f.affected
                    ),
                })
            for i in range(len(frame.sample.labels)):
                annotations.append({
                    "token": _token("ann", token, i),
                    "sample_token": token,
                    "category_name": CLASS_NAMES[
                        int(frame.sample.labels[i]) - 1
                    ],
                    "bbox": [float(v) for v in frame.sample.boxes[i]],
                })
            if per_frame_dets is not None:
                dets = per_frame_dets[t]
                results[token] = [
                    {
                        "bbox": [float(v) for v in dets.boxes[i]],
                        "detection_score": float(dets.scores[i]),
                        "detection_name": CLASS_NAMES[int(dets.labels[i]) - 1],
                    }
                    for i in range(len(dets))
                ]
        scenes.append({
            "token": scene_token,
            "name": spec.name,
            "description": spec.description,
            "nbr_samples": spec.num_frames,
            "first_sample_token": frame_tokens[0],
            "last_sample_token": frame_tokens[-1],
            "contexts": list(spec.contexts),
            "content_token": spec.content_token(),
        })

    meta = {
        "schema": EXPORT_SCHEMA,
        "schema_version": EXPORT_SCHEMA_VERSION,
        "seed": int(seed),
        "image_size": int(image_size),
        "campaign": (
            None if campaign is None
            else {
                "name": campaign.name,
                "seed": campaign.seed,
                "scenarios": campaign.scenarios,
                "digest": campaign.digest(),
            }
        ),
        "counts": {
            "scene": len(scenes),
            "sample": len(samples),
            "sample_data": len(sample_data),
            "sample_annotation": len(annotations),
        },
    }
    return Corpus(
        meta=meta,
        category=category,
        scene=scenes,
        sample=samples,
        sample_data=sample_data,
        sample_annotation=annotations,
        detection={"results": results} if detections else None,
        drive_trace=(
            {name: traces[name].to_dict() for name in sorted(traces)}
            if traces else None
        ),
    )


def write_corpus(corpus: Corpus, out_dir) -> dict[str, Path]:
    """Write every table as ``<out_dir>/<table>.json``; returns the paths.

    Serialization is canonical (``indent=2, sort_keys=True``, trailing
    newline), so re-writing a loaded corpus reproduces the input files
    byte for byte.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for name, payload in corpus.tables().items():
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths[name] = path
    return paths


def load_corpus(out_dir) -> Corpus:
    """Parse a corpus directory back into a :class:`Corpus`."""
    out_dir = Path(out_dir)
    meta_path = out_dir / "meta.json"
    if not meta_path.is_file():
        raise FileNotFoundError(f"not a corpus directory: {out_dir}")
    meta = json.loads(meta_path.read_text())
    schema = meta.get("schema")
    version = meta.get("schema_version")
    if schema != EXPORT_SCHEMA or version != EXPORT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported corpus schema {schema!r} v{version!r} "
            f"(this reader speaks {EXPORT_SCHEMA!r} "
            f"v{EXPORT_SCHEMA_VERSION})"
        )
    tables: dict[str, object] = {}
    for name in _REQUIRED_TABLES:
        path = out_dir / f"{name}.json"
        if not path.is_file():
            raise FileNotFoundError(f"corpus is missing table: {path.name}")
        tables[name] = json.loads(path.read_text())
    optional: dict[str, object | None] = {}
    for name in ("detection", "drive_trace"):
        path = out_dir / f"{name}.json"
        optional[name] = json.loads(path.read_text()) if path.is_file() else None
    return Corpus(meta=meta, **tables, **optional)


def export_corpus(
    out_dir,
    specs,
    *,
    seed: int = 0,
    image_size: int = 64,
    campaign=None,
    detections: dict | None = None,
    traces: dict | None = None,
) -> Corpus:
    """Build and write a corpus in one call; returns the built corpus."""
    corpus = build_corpus(
        specs, seed=seed, image_size=image_size, campaign=campaign,
        detections=detections, traces=traces,
    )
    write_corpus(corpus, out_dir)
    return corpus


def validate_corpus(corpus: Corpus) -> list[str]:
    """Check the corpus against the documented schema.

    Returns a list of human-readable violations (empty = valid):
    referential integrity between tables, unique tokens, per-scene
    ``prev``/``next`` sample chains with monotone timestamps, complete
    sensor coverage per sample, and value-range checks on annotations
    and detections.
    """
    problems: list[str] = []

    def check(ok: bool, message: str) -> None:
        if not ok:
            problems.append(message)

    meta = corpus.meta
    check(meta.get("schema") == EXPORT_SCHEMA,
          f"meta.schema is {meta.get('schema')!r}, want {EXPORT_SCHEMA!r}")
    check(meta.get("schema_version") == EXPORT_SCHEMA_VERSION,
          f"meta.schema_version is {meta.get('schema_version')!r}")
    counts = meta.get("counts", {})
    for name in ("scene", "sample", "sample_data", "sample_annotation"):
        actual = len(getattr(corpus, name))
        check(counts.get(name) == actual,
              f"meta.counts.{name} is {counts.get(name)}, table has {actual}")

    category_names = {c.get("name") for c in corpus.category}
    check(len(corpus.category) == len(category_names),
          "duplicate category names")
    check(category_names == set(CLASS_NAMES),
          f"category names {sorted(category_names)} != RADIATE classes")

    scene_tokens = [s.get("token") for s in corpus.scene]
    check(len(scene_tokens) == len(set(scene_tokens)),
          "duplicate scene tokens")
    sample_tokens = [s.get("token") for s in corpus.sample]
    sample_set = set(sample_tokens)
    check(len(sample_tokens) == len(sample_set), "duplicate sample tokens")

    by_scene: dict[str, list[dict]] = {}
    for record in corpus.sample:
        check(record.get("scene_token") in set(scene_tokens),
              f"sample {record.get('token')} references unknown scene")
        check(record.get("context") in CONTEXT_NAMES,
              f"sample {record.get('token')} has unknown context "
              f"{record.get('context')!r}")
        by_scene.setdefault(record.get("scene_token"), []).append(record)
    for scene in corpus.scene:
        chain = by_scene.get(scene.get("token"), [])
        check(len(chain) == scene.get("nbr_samples"),
              f"scene {scene.get('name')}: {len(chain)} samples, "
              f"nbr_samples says {scene.get('nbr_samples')}")
        if not chain:
            continue
        chain.sort(key=lambda r: r.get("timestamp", 0))
        check(chain[0].get("token") == scene.get("first_sample_token"),
              f"scene {scene.get('name')}: first_sample_token mismatch")
        check(chain[-1].get("token") == scene.get("last_sample_token"),
              f"scene {scene.get('name')}: last_sample_token mismatch")
        check(chain[0].get("prev") == "",
              f"scene {scene.get('name')}: first sample has a prev link")
        check(chain[-1].get("next") == "",
              f"scene {scene.get('name')}: last sample has a next link")
        for earlier, later in zip(chain, chain[1:]):
            check(earlier.get("next") == later.get("token")
                  and later.get("prev") == earlier.get("token"),
                  f"scene {scene.get('name')}: broken prev/next chain at "
                  f"timestamp {later.get('timestamp')}")
            check(earlier.get("timestamp") < later.get("timestamp"),
                  f"scene {scene.get('name')}: non-increasing timestamps")

    data_tokens = [d.get("token") for d in corpus.sample_data]
    check(len(data_tokens) == len(set(data_tokens)),
          "duplicate sample_data tokens")
    channels_by_sample: dict[str, set[str]] = {}
    for record in corpus.sample_data:
        check(record.get("sample_token") in sample_set,
              f"sample_data {record.get('token')} references unknown sample")
        check(record.get("channel") in SENSORS,
              f"sample_data {record.get('token')} has unknown channel "
              f"{record.get('channel')!r}")
        channels_by_sample.setdefault(
            record.get("sample_token"), set()
        ).add(record.get("channel"))
    for token in sample_set:
        check(channels_by_sample.get(token) == set(SENSORS),
              f"sample {token} missing sensor channels")

    for record in corpus.sample_annotation:
        check(record.get("sample_token") in sample_set,
              f"annotation {record.get('token')} references unknown sample")
        check(record.get("category_name") in category_names,
              f"annotation {record.get('token')} has unknown category "
              f"{record.get('category_name')!r}")
        bbox = record.get("bbox")
        check(isinstance(bbox, list) and len(bbox) == 4,
              f"annotation {record.get('token')} bbox is not [x1,y1,x2,y2]")

    if corpus.detection is not None:
        results = corpus.detection.get("results")
        check(isinstance(results, dict), "detection.results is not a mapping")
        for token, dets in (results or {}).items():
            check(token in sample_set,
                  f"detection results for unknown sample {token}")
            for det in dets:
                check(det.get("detection_name") in category_names,
                      f"detection on {token} has unknown category "
                      f"{det.get('detection_name')!r}")
                score = det.get("detection_score")
                check(isinstance(score, (int, float)) and 0.0 <= score <= 1.0,
                      f"detection on {token} has score {score!r} "
                      "outside [0, 1]")
                bbox = det.get("bbox")
                check(isinstance(bbox, list) and len(bbox) == 4,
                      f"detection on {token} bbox is not [x1,y1,x2,y2]")

    return problems
