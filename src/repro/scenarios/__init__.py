"""Procedural scenario campaigns and nuScenes-style corpus export.

The hand-written library (``repro.simulation.library``) tops out at a
dozen drives; this package turns "as many scenarios as you can imagine"
into a config: a declarative :class:`CampaignSpec` composes context
arcs, traffic-density profiles, energy profiles and fault schedules
from a seeded parameter space into hundreds of distinct, byte-
deterministic :class:`~repro.simulation.scenario.ScenarioSpec`s, and
:mod:`repro.scenarios.export` writes generated corpora (drive traces +
per-frame detections included) in a schema-versioned nuScenes-style
sample/sample_annotation JSON layout that external tools can consume.
"""

from .campaign import (
    DEFAULT_ARCS,
    DEFAULT_ENERGY,
    DEFAULT_TRAFFIC,
    CampaignSpec,
    ContextArc,
    EnergyProfile,
    FaultPlan,
    TrafficProfile,
    generate_campaign,
    generate_scenario,
)
from .export import (
    EXPORT_SCHEMA,
    EXPORT_SCHEMA_VERSION,
    Corpus,
    build_corpus,
    export_corpus,
    load_corpus,
    validate_corpus,
    write_corpus,
)

__all__ = [
    "DEFAULT_ARCS",
    "DEFAULT_ENERGY",
    "DEFAULT_TRAFFIC",
    "CampaignSpec",
    "ContextArc",
    "EnergyProfile",
    "FaultPlan",
    "TrafficProfile",
    "generate_campaign",
    "generate_scenario",
    "EXPORT_SCHEMA",
    "EXPORT_SCHEMA_VERSION",
    "Corpus",
    "build_corpus",
    "export_corpus",
    "load_corpus",
    "validate_corpus",
    "write_corpus",
]
