"""Config-driven procedural scenario generation.

A :class:`CampaignSpec` is a pure-python declarative campaign config in
the MUSE_Carla style (``config.yml``-driven campaigns composing weather
presets and traffic densities), adapted to this repo's simulator: it
describes a *parameter space* — context arcs whose distribution shifts
mid-drive (CARMA's motivating condition), traffic/ego-speed profiles,
regen/charging energy profiles and a fault-schedule plan — and a seed.
:func:`generate_campaign` samples that space into hundreds of distinct
:class:`~repro.simulation.scenario.ScenarioSpec`s.

Determinism contract
--------------------
* Same config + seed ⇒ byte-identical specs (``repr`` equality), every
  time, on every machine.
* Each scenario draws from its own child stream
  ``default_rng((seed, salt, index))`` — the same prefix-stable pattern
  as ``repro.resilience.fuzz`` — so scenario ``i`` is identical whether
  the campaign generates 10 drives or 10 000, and campaigns can be
  generated shard-wise.
* Generated fault windows are always fully contained in the drive, so
  every spec passes ``ScenarioSpec.__post_init__`` without the overhang
  warning, and floats are rounded to fixed precision so spec ``repr``s
  (which feed ``content_token()``) are stable.

Generated drives never alias library drives in sample-keyed caches:
drive uids embed ``content_token()``, which hashes the actual segments
and faults rather than trusting the name.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

import numpy as np

from ..datasets.contexts import get_context
from ..simulation.scenario import (
    FAULT_MODES,
    SENSOR_GROUPS,
    ScenarioSpec,
    SegmentSpec,
    SensorFault,
)

__all__ = [
    "DEFAULT_ARCS",
    "DEFAULT_ENERGY",
    "DEFAULT_TRAFFIC",
    "CampaignSpec",
    "ContextArc",
    "EnergyProfile",
    "FaultPlan",
    "TrafficProfile",
    "generate_campaign",
    "generate_scenario",
]

# Child-stream salt: campaign scenario streams must never collide with
# the drive RNG streams (0x5CE7A810 / 0xFA017 in repro.simulation.drive)
# or the fuzzer's mutation streams.
_STREAM_SALT = 0xCA3791A6

# Campaign/scenario names end up in file names (sweep resume shards,
# per-scenario trace files), so keep them path-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def _check_span(label: str, span: tuple, *, lo=None, hi=None) -> None:
    if len(span) != 2 or span[0] > span[1]:
        raise ValueError(f"{label} must be a (lo, hi) pair with lo <= hi, got {span}")
    if lo is not None and span[0] < lo:
        raise ValueError(f"{label} lower bound must be >= {lo}, got {span[0]}")
    if hi is not None and span[1] > hi:
        raise ValueError(f"{label} upper bound must be <= {hi}, got {span[1]}")


@dataclass(frozen=True)
class ContextArc:
    """One candidate context chain for a drive (in drive order).

    An arc with more than one context produces a drive whose context
    distribution *shifts mid-drive* — fog rolling onto a motorway, a
    city drive running into night — which is exactly the condition the
    temporal gating policies must ride through.  ``weight`` is the
    arc's relative draw probability within the campaign.
    """

    contexts: tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.contexts:
            raise ValueError("context arc needs at least one context")
        for context in self.contexts:
            get_context(context)  # validate early: typos fail loudly
        if self.weight <= 0:
            raise ValueError("arc weight must be positive")


@dataclass(frozen=True)
class TrafficProfile:
    """A traffic-density regime: per-segment multiplier + ego speed ranges."""

    name: str
    traffic: tuple[float, float] = (0.8, 1.2)
    ego_speed: tuple[float, float] = (0.8, 1.2)
    weight: float = 1.0

    def __post_init__(self) -> None:
        _check_span("traffic range", self.traffic, lo=1e-3)
        _check_span("ego_speed range", self.ego_speed, lo=0.0)
        if self.weight <= 0:
            raise ValueError("traffic profile weight must be positive")


@dataclass(frozen=True)
class EnergyProfile:
    """A regen/charging regime for the battery model.

    Each segment draws its regen fraction from ``regen`` and — with
    probability ``charging_probability`` — an external charging power
    from ``charging_watts`` (opportunity charging at a stop).
    """

    name: str
    regen: tuple[float, float] = (0.0, 0.3)
    charging_watts: tuple[float, float] = (0.0, 0.0)
    charging_probability: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        _check_span("regen range", self.regen, lo=0.0, hi=1.0)
        _check_span("charging_watts range", self.charging_watts, lo=0.0)
        if not 0.0 <= self.charging_probability <= 1.0:
            raise ValueError("charging_probability must be within [0, 1]")
        if self.weight <= 0:
            raise ValueError("energy profile weight must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """The fault-schedule parameter space for generated drives.

    ``count`` is the inclusive range of fault windows per drive;
    ``duration_frac`` sizes each window as a fraction of the drive
    (clamped so the window stays inside it — generated specs never trip
    the overhang warning); ``severity`` must stay inside the
    ``SensorFault`` validity range (0, 1].
    """

    count: tuple[int, int] = (0, 3)
    sensors: tuple[str, ...] = tuple(sorted(SENSOR_GROUPS))
    modes: tuple[str, ...] = FAULT_MODES
    duration_frac: tuple[float, float] = (0.08, 0.45)
    severity: tuple[float, float] = (0.3, 1.0)
    lag: tuple[int, int] = (1, 6)

    def __post_init__(self) -> None:
        _check_span("fault count range", self.count, lo=0)
        if not self.sensors:
            raise ValueError("fault plan needs at least one sensor")
        for sensor in self.sensors:
            if sensor not in SENSOR_GROUPS:
                raise ValueError(
                    f"unknown sensor '{sensor}'; valid: {sorted(SENSOR_GROUPS)}"
                )
        if not self.modes:
            raise ValueError("fault plan needs at least one mode")
        for mode in self.modes:
            if mode not in FAULT_MODES:
                raise ValueError(
                    f"unknown fault mode '{mode}'; valid: {FAULT_MODES}"
                )
        _check_span("duration_frac range", self.duration_frac, hi=1.0)
        if self.duration_frac[0] <= 0:
            raise ValueError("duration_frac lower bound must be positive")
        _check_span("severity range", self.severity, hi=1.0)
        if self.severity[0] <= 0:
            raise ValueError("severity lower bound must be positive")
        _check_span("lag range", self.lag, lo=1)


# Default parameter space: every RADIATE context appears, most arcs
# shift context mid-drive, and the three traffic/energy regimes span
# sparse motorway cruising to rush-hour stop-and-go with opportunity
# charging.
DEFAULT_ARCS: tuple[ContextArc, ...] = (
    ContextArc(("city", "junction", "city")),
    ContextArc(("motorway", "rain", "motorway")),
    ContextArc(("rural", "fog"), weight=0.8),
    ContextArc(("city", "night")),
    ContextArc(("motorway",), weight=0.5),
    ContextArc(("snow", "rural"), weight=0.8),
    ContextArc(("night", "rain"), weight=0.6),
    ContextArc(("junction", "motorway", "rural")),
)

DEFAULT_TRAFFIC: tuple[TrafficProfile, ...] = (
    TrafficProfile("sparse", traffic=(0.4, 0.8), ego_speed=(1.0, 1.6)),
    TrafficProfile("nominal", traffic=(0.8, 1.2), ego_speed=(0.8, 1.2), weight=2.0),
    TrafficProfile("rush_hour", traffic=(1.3, 2.0), ego_speed=(0.3, 0.8)),
)

DEFAULT_ENERGY: tuple[EnergyProfile, ...] = (
    EnergyProfile("cruise", regen=(0.0, 0.1)),
    EnergyProfile("stop_and_go", regen=(0.25, 0.6), weight=1.5),
    EnergyProfile(
        "opportunity_charge",
        regen=(0.1, 0.3),
        charging_watts=(1500.0, 7000.0),
        charging_probability=0.5,
    ),
)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative procedural campaign: parameter space + seed."""

    name: str
    seed: int = 0
    scenarios: int = 200
    segment_frames: tuple[int, int] = (24, 96)
    arcs: tuple[ContextArc, ...] = DEFAULT_ARCS
    traffic: tuple[TrafficProfile, ...] = DEFAULT_TRAFFIC
    energy: tuple[EnergyProfile, ...] = DEFAULT_ENERGY
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"campaign name {self.name!r} must be path-safe "
                "([A-Za-z0-9_.-], not starting with a separator)"
            )
        if self.scenarios < 1:
            raise ValueError("campaign must generate at least one scenario")
        _check_span("segment_frames range", self.segment_frames, lo=1)
        if not self.arcs:
            raise ValueError("campaign needs at least one context arc")
        if not self.traffic:
            raise ValueError("campaign needs at least one traffic profile")
        if not self.energy:
            raise ValueError("campaign needs at least one energy profile")

    def digest(self) -> str:
        """Digest of the full parameter space + seed.

        Two campaigns generate identical corpora iff their digests match
        (everything the generator consumes is in the ``repr``); exported
        corpora carry this in their ``meta.json`` for provenance.
        """
        return hashlib.blake2s(repr(self).encode(), digest_size=8).hexdigest()


def _pick(rng: np.random.Generator, items):
    """Weighted draw over items carrying a ``weight`` attribute."""
    cum = np.cumsum([item.weight for item in items])
    draw = rng.random() * cum[-1]
    return items[min(int(np.searchsorted(cum, draw, side="right")), len(items) - 1)]


def _unit(rng: np.random.Generator, span: tuple[float, float], ndigits: int = 3) -> float:
    """Uniform float in ``span``, rounded so spec reprs stay stable."""
    lo, hi = span
    return float(round(float(rng.uniform(lo, hi)), ndigits))


def _count(rng: np.random.Generator, span: tuple[int, int]) -> int:
    lo, hi = span
    return int(rng.integers(lo, hi + 1))


def generate_scenario(campaign: CampaignSpec, index: int) -> ScenarioSpec:
    """Generate scenario ``index`` of ``campaign``, byte-deterministically.

    Uses a per-index child RNG stream, so the result depends only on
    ``(campaign, index)`` — never on how many other scenarios were (or
    will be) generated.
    """
    if not 0 <= index < campaign.scenarios:
        raise IndexError(
            f"scenario index {index} outside campaign [0, {campaign.scenarios})"
        )
    rng = np.random.default_rng((campaign.seed, _STREAM_SALT, index))
    arc = _pick(rng, campaign.arcs)
    traffic = _pick(rng, campaign.traffic)
    energy = _pick(rng, campaign.energy)

    segments = []
    for context in arc.contexts:
        charging = 0.0
        # Always consume the probability draw so the stream shape is
        # independent of the outcome (and of charging_probability=0).
        wants_charge = rng.random() < energy.charging_probability
        if wants_charge:
            charging = _unit(rng, energy.charging_watts, ndigits=1)
        segments.append(
            SegmentSpec(
                context=context,
                frames=_count(rng, campaign.segment_frames),
                ego_speed=_unit(rng, traffic.ego_speed),
                traffic=_unit(rng, traffic.traffic),
                regen=_unit(rng, energy.regen),
                charging_watts=charging,
            )
        )
    num_frames = sum(s.frames for s in segments)

    plan = campaign.faults
    faults = []
    for _ in range(_count(rng, plan.count)):
        sensor = plan.sensors[int(rng.integers(len(plan.sensors)))]
        mode = plan.modes[int(rng.integers(len(plan.modes)))]
        start = int(rng.integers(num_frames))
        duration = max(int(round(_unit(rng, plan.duration_frac) * num_frames)), 1)
        # Contain the window in the drive: generated specs must pass
        # ScenarioSpec validation without tripping the overhang warning.
        duration = min(duration, num_frames - start)
        faults.append(
            SensorFault(
                sensor=sensor,
                start=start,
                duration=duration,
                mode=mode,
                severity=_unit(rng, plan.severity),
                lag=_count(rng, plan.lag),
            )
        )

    name = f"{campaign.name}_{index:04d}"
    description = (
        f"procedural drive {index:04d} of campaign '{campaign.name}' "
        f"(seed {campaign.seed}): {'->'.join(arc.contexts)} under "
        f"{traffic.name} traffic, {energy.name} energy, "
        f"{len(faults)} fault window(s)"
    )
    return ScenarioSpec(
        name=name,
        description=description,
        segments=tuple(segments),
        faults=tuple(faults),
    )


def generate_campaign(campaign: CampaignSpec) -> dict[str, ScenarioSpec]:
    """Generate the whole campaign: name -> spec, in index order."""
    specs = (generate_scenario(campaign, i) for i in range(campaign.scenarios))
    return {spec.name: spec for spec in specs}
